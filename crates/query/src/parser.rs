//! Recursive-descent parser for the ABae SQL dialect (Figure 1), plus the
//! proxy-management statements.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement := query | create_proxy | show_proxies
//! query    := SELECT agg_item (',' agg_item)* [',' ident] FROM ident
//!             WHERE or_expr
//!             [GROUP BY ident_expr]
//!             [UNTIL CI WIDTH '<' (number | '?') MAX]
//!             ORACLE LIMIT (number | '?') [USING ident]
//!             [WITH PROBABILITY (number | '?')] [';']
//! agg_item := agg '(' agg_expr ')'
//! agg      := AVG | SUM | COUNT | PERCENTAGE
//! or_expr  := and_expr (OR and_expr)*
//! and_expr := not_expr (AND not_expr)*
//! not_expr := NOT not_expr | '(' or_expr ')' | atom
//! atom     := ident ['(' args ')'] [cmp literal]
//! create_proxy := CREATE PROXY ident ON ident '(' ident ')'
//!                 [USING (KEYWORD | LOGISTIC)] [CALIBRATED]
//!                 [TRAIN LIMIT number] [';']
//! show_proxies := SHOW PROXIES [FROM ident] [';']
//! ```
//!
//! The `SELECT` list accepts several aggregates (answered from one shared
//! labeling pass) and, for group-by queries, a trailing projected key as in
//! the paper's `SELECT COUNT(frame), person FROM ...`. A list entry is an
//! aggregate when it is one of the four aggregate names followed by `(`;
//! anything else is the projected key and must come last.

use crate::ast::{
    AggFunc, AggItem, BoolExpr, CreateProxyStmt, Placeholders, PredAtom, ProxyFamily, Query,
    Statement,
};
use crate::lexer::{tokenize, LexError, Token, TokenKind};

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token or end of input.
    Unexpected {
        /// What the parser needed.
        expected: String,
        /// What it found (`<eof>` at end of input).
        found: String,
        /// Byte offset.
        offset: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { expected, found, offset } => {
                write!(f, "parse error at byte {offset}: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map(|t| t.offset).unwrap_or(usize::MAX)
    }

    fn found(&self) -> String {
        match self.peek() {
            Some(k) => format!("{k:?}"),
            None => "<eof>".to_string(),
        }
    }

    fn error(&self, expected: &str) -> ParseError {
        ParseError::Unexpected {
            expected: expected.to_string(),
            found: self.found(),
            offset: self.offset(),
        }
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    /// Consumes an identifier matching `kw` case-insensitively.
    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.error(&format!("keyword {kw}"))),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case(kw))
            && self.bump().is_some()
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error(what)),
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, ParseError> {
        match self.peek() {
            Some(TokenKind::Number(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(n)
            }
            _ => Err(self.error(what)),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    /// Whether the upcoming tokens start another aggregate of the `SELECT`
    /// list: one of the four aggregate names immediately followed by `(`.
    /// (A bare identifier is the group-by projected key instead.)
    fn at_agg_item(&self) -> bool {
        let is_agg_name = matches!(
            self.peek(),
            Some(TokenKind::Ident(s))
                if ["AVG", "SUM", "COUNT", "PERCENTAGE"]
                    .iter()
                    .any(|kw| s.eq_ignore_ascii_case(kw))
        );
        is_agg_name
            && matches!(self.tokens.get(self.pos + 1).map(|t| &t.kind), Some(TokenKind::LParen))
    }

    /// Parses one `SELECT`-list aggregate: `FUNC '(' expr ')'`.
    fn agg_item(&mut self) -> Result<AggItem, ParseError> {
        let func = self.agg_func()?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let expr = self.agg_expr()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(AggItem { func, expr })
    }

    fn agg_func(&mut self) -> Result<AggFunc, ParseError> {
        let name = self.ident("aggregate function (AVG | SUM | COUNT | PERCENTAGE)")?;
        match name.to_ascii_uppercase().as_str() {
            "AVG" => Ok(AggFunc::Avg),
            "SUM" => Ok(AggFunc::Sum),
            "COUNT" => Ok(AggFunc::Count),
            "PERCENTAGE" => Ok(AggFunc::Percentage),
            other => Err(ParseError::Unexpected {
                expected: "AVG | SUM | COUNT | PERCENTAGE".to_string(),
                found: other.to_string(),
                offset: self.offset(),
            }),
        }
    }

    /// Parses the aggregated expression inside `AGG( ... )` as raw text
    /// (identifier, nested call, or `*`).
    fn agg_expr(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(TokenKind::Star) => {
                self.pos += 1;
                Ok("*".to_string())
            }
            Some(TokenKind::Ident(_)) => {
                let name = self.ident("expression")?;
                if self.peek() == Some(&TokenKind::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&TokenKind::RParen) {
                        loop {
                            args.push(self.ident("argument")?);
                            if self.peek() == Some(&TokenKind::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                    Ok(format!("{name}({})", args.join(", ")))
                } else {
                    Ok(name)
                }
            }
            _ => Err(self.error("aggregated expression")),
        }
    }

    fn or_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut left = self.and_expr()?;
        while self.try_keyword("OR") {
            let right = self.and_expr()?;
            left = BoolExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut left = self.not_expr()?;
        while self.try_keyword("AND") {
            let right = self.not_expr()?;
            left = BoolExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<BoolExpr, ParseError> {
        if self.try_keyword("NOT") {
            return Ok(BoolExpr::Not(Box::new(self.not_expr()?)));
        }
        if self.peek() == Some(&TokenKind::LParen) {
            self.pos += 1;
            let inner = self.or_expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(inner);
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<BoolExpr, ParseError> {
        let name = self.ident("predicate")?;
        let mut args = Vec::new();
        if self.peek() == Some(&TokenKind::LParen) {
            self.pos += 1;
            if self.peek() != Some(&TokenKind::RParen) {
                loop {
                    match self.peek() {
                        Some(TokenKind::Ident(s)) => {
                            args.push(s.clone());
                            self.pos += 1;
                        }
                        Some(TokenKind::Str(s)) => {
                            args.push(s.clone());
                            self.pos += 1;
                        }
                        Some(TokenKind::Number(n)) => {
                            args.push(format!("{n}"));
                            self.pos += 1;
                        }
                        _ => return Err(self.error("argument")),
                    }
                    if self.peek() == Some(&TokenKind::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
        }
        // Optional comparison to a literal.
        let comparison = match self.peek() {
            Some(TokenKind::Eq) => {
                self.pos += 1;
                Some(format!("={}", self.literal()?))
            }
            Some(TokenKind::Neq) => {
                self.pos += 1;
                Some(format!("!={}", self.literal()?))
            }
            Some(TokenKind::Gt) => {
                self.pos += 1;
                Some(format!(">{}", self.literal()?))
            }
            Some(TokenKind::Ge) => {
                self.pos += 1;
                Some(format!(">={}", self.literal()?))
            }
            Some(TokenKind::Lt) => {
                self.pos += 1;
                Some(format!("<{}", self.literal()?))
            }
            Some(TokenKind::Le) => {
                self.pos += 1;
                Some(format!("<={}", self.literal()?))
            }
            _ => None,
        };
        Ok(BoolExpr::Atom(PredAtom { name, args, comparison }))
    }

    fn literal(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(TokenKind::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(TokenKind::Number(n)) => {
                let n = *n;
                self.pos += 1;
                // Render integers without the trailing `.0`.
                if n.fract() == 0.0 {
                    Ok(format!("{}", n as i64))
                } else {
                    Ok(format!("{n}"))
                }
            }
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error("literal")),
        }
    }

    /// Parses a group-by key: identifier with optional call arguments,
    /// returned as the bare name (e.g. `HAIR_COLOR(image)` → `HAIR_COLOR`).
    fn group_key(&mut self) -> Result<String, ParseError> {
        let name = self.ident("group-by key")?;
        if self.peek() == Some(&TokenKind::LParen) {
            self.pos += 1;
            while self.peek() != Some(&TokenKind::RParen) {
                if self.bump().is_none() {
                    return Err(self.error("`)`"));
                }
            }
            self.pos += 1;
        }
        Ok(name)
    }

    /// Consumes an optional trailing semicolon and requires end of input.
    fn finish(&mut self, what: &str) -> Result<(), ParseError> {
        let _ = self.peek() == Some(&TokenKind::Semicolon) && self.bump().is_some();
        if self.peek().is_some() {
            return Err(self.error(what));
        }
        Ok(())
    }

    /// Parses a full `SELECT` query (Figure 1).
    fn query(&mut self) -> Result<Query, ParseError> {
        self.keyword("SELECT")?;
        let mut aggs = vec![self.agg_item()?];

        // Further `SELECT`-list entries: more aggregates (answered from the
        // same labeling pass), then optionally one projected group key (as
        // in the paper's `SELECT COUNT(frame), person FROM ...`), which
        // must be the last entry.
        let mut projected_key: Option<String> = None;
        while self.peek() == Some(&TokenKind::Comma) {
            self.pos += 1;
            if self.at_agg_item() {
                aggs.push(self.agg_item()?);
            } else {
                projected_key = Some(self.ident("aggregate or projected key")?);
                break;
            }
        }

        self.keyword("FROM")?;
        let table = self.ident("table name")?;
        self.keyword("WHERE")?;
        let predicate = self.or_expr()?;

        let mut group_by = None;
        if self.try_keyword("GROUP") {
            self.keyword("BY")?;
            group_by = Some(self.group_key()?);
        } else if projected_key.is_some() {
            return Err(self.error("GROUP BY (query projects a key)"));
        }

        let mut placeholders = Placeholders::default();

        // `UNTIL CI WIDTH < x MAX ORACLE LIMIT n`: stop early once the CI
        // is narrower than `x`, never spending more than `n`. The `MAX`
        // keyword is mandatory — the budget that follows is a cap, not a
        // target.
        let mut until_width = None;
        if self.try_keyword("UNTIL") {
            self.keyword("CI")?;
            self.keyword("WIDTH")?;
            self.expect(&TokenKind::Lt, "`<`")?;
            if self.peek() == Some(&TokenKind::Question) {
                self.pos += 1;
                placeholders.until_width = true;
                until_width = Some(0.0);
            } else {
                until_width = Some(self.number("CI width target or `?`")?);
            }
            self.keyword("MAX")?;
        }

        self.keyword("ORACLE")?;
        self.keyword("LIMIT")?;
        // `ORACLE LIMIT ?` defers the budget to Prepared::with_budget.
        let limit = if self.peek() == Some(&TokenKind::Question) {
            self.pos += 1;
            placeholders.oracle_limit = true;
            0.0
        } else {
            self.number("oracle limit or `?`")?
        };

        let mut proxy = None;
        if self.try_keyword("USING") {
            proxy = Some(self.ident("proxy name")?);
            // Allow a call form `proxy(frame)`.
            if self.peek() == Some(&TokenKind::LParen) {
                self.pos += 1;
                while self.peek() != Some(&TokenKind::RParen) {
                    if self.bump().is_none() {
                        return Err(self.error("`)`"));
                    }
                }
                self.pos += 1;
            }
        }

        let mut probability = 0.95;
        if self.try_keyword("WITH") {
            self.keyword("PROBABILITY")?;
            if self.peek() == Some(&TokenKind::Question) {
                self.pos += 1;
                placeholders.probability = true;
            } else {
                probability = self.number("probability or `?`")?;
            }
        }

        self.finish("end of query")?;

        Ok(Query {
            aggs,
            table,
            predicate,
            group_by,
            until_width,
            oracle_limit: limit.max(0.0) as usize,
            proxy,
            probability,
            placeholders,
        })
    }

    /// Parses `CREATE PROXY name ON table(pred) [USING family]
    /// [CALIBRATED] [TRAIN LIMIT n]`.
    fn create_proxy(&mut self) -> Result<CreateProxyStmt, ParseError> {
        self.keyword("CREATE")?;
        self.keyword("PROXY")?;
        let name = self.ident("proxy name")?;
        self.keyword("ON")?;
        let table = self.ident("table name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let predicate = self.ident("predicate name")?;
        self.expect(&TokenKind::RParen, "`)`")?;

        let mut family = None;
        if self.try_keyword("USING") {
            let offset = self.offset();
            let f = self.ident("proxy family (keyword | logistic)")?;
            family = Some(match f.to_ascii_lowercase().as_str() {
                "keyword" => ProxyFamily::Keyword,
                "logistic" => ProxyFamily::Logistic,
                other => {
                    return Err(ParseError::Unexpected {
                        expected: "keyword | logistic".to_string(),
                        found: other.to_string(),
                        offset,
                    })
                }
            });
        }
        let calibrated = self.try_keyword("CALIBRATED");
        let mut train_limit = None;
        if self.try_keyword("TRAIN") {
            self.keyword("LIMIT")?;
            train_limit = Some(self.number("train limit")?.max(0.0) as usize);
        }
        self.finish("end of CREATE PROXY statement")?;
        Ok(CreateProxyStmt { name, table, predicate, family, calibrated, train_limit })
    }

    /// Parses `SHOW PROXIES [FROM table]`.
    fn show_proxies(&mut self) -> Result<Option<String>, ParseError> {
        self.keyword("SHOW")?;
        self.keyword("PROXIES")?;
        let table =
            if self.try_keyword("FROM") { Some(self.ident("table name")?) } else { None };
        self.finish("end of SHOW PROXIES statement")?;
        Ok(table)
    }
}

/// Parses one ABae query.
///
/// ```
/// use abae_query::parse_query;
///
/// let q = parse_query(
///     "SELECT AVG(views) FROM news WHERE contains_candidate(frame, 'Biden') \
///      ORACLE LIMIT 10,000 USING proxy WITH PROBABILITY 0.95",
/// ).unwrap();
/// assert_eq!(q.table, "news");
/// assert_eq!(q.oracle_limit, 10_000);
/// assert_eq!(q.predicate.atom_keys(), vec!["contains_candidate".to_string()]);
/// ```
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input)?;
    Parser { tokens, pos: 0 }.query()
}

/// Parses one statement of the dialect: a `SELECT` query, `CREATE PROXY`,
/// or `SHOW PROXIES` — dispatched on the leading keyword.
///
/// ```
/// use abae_query::{parse_statement, Statement};
///
/// let s = parse_statement(
///     "CREATE PROXY spamnet ON emails(is_spam) USING logistic CALIBRATED TRAIN LIMIT 1,000",
/// ).unwrap();
/// match s {
///     Statement::CreateProxy(c) => {
///         assert_eq!(c.name, "spamnet");
///         assert_eq!(c.train_limit, Some(1_000));
///         assert!(c.calibrated);
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    match p.peek() {
        Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("CREATE") => {
            p.create_proxy().map(Statement::CreateProxy)
        }
        Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("SHOW") => {
            p.show_proxies().map(Statement::ShowProxies)
        }
        _ => p.query().map(Statement::Select),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BoolExpr;

    #[test]
    fn parses_the_tv_news_example() {
        let q = parse_query(
            "SELECT AVG(views) FROM news \
             WHERE contains_candidate(frame, 'Biden') \
             ORACLE LIMIT 10,000 USING proxy(frame) \
             WITH PROBABILITY 0.95",
        )
        .unwrap();
        assert_eq!(q.primary_agg().func, AggFunc::Avg);
        assert_eq!(q.primary_agg().expr, "views");
        assert_eq!(q.aggs.len(), 1);
        assert_eq!(q.table, "news");
        assert_eq!(q.oracle_limit, 10_000);
        assert_eq!(q.proxy.as_deref(), Some("proxy"));
        assert_eq!(q.probability, 0.95);
        match &q.predicate {
            BoolExpr::Atom(a) => {
                assert_eq!(a.name, "contains_candidate");
                assert_eq!(a.args, vec!["frame".to_string(), "Biden".to_string()]);
                assert_eq!(a.key(), "contains_candidate");
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn parses_the_traffic_example_with_conjunction_and_comparison() {
        let q = parse_query(
            "SELECT AVG(count_cars(frame)) FROM video \
             WHERE count_cars(frame) > 0 AND red_light(frame) \
             ORACLE LIMIT 1,000 USING proxy(frame) \
             WITH PROBABILITY 0.95",
        )
        .unwrap();
        assert_eq!(q.primary_agg().expr, "count_cars(frame)");
        match &q.predicate {
            BoolExpr::And(l, r) => {
                match l.as_ref() {
                    BoolExpr::Atom(a) => assert_eq!(a.key(), "count_cars>0"),
                    other => panic!("{other:?}"),
                }
                match r.as_ref() {
                    BoolExpr::Atom(a) => assert_eq!(a.key(), "red_light"),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn parses_group_by_with_projection_and_in_style_or() {
        let q = parse_query(
            "SELECT PERCENTAGE(is_smiling(image)) FROM images \
             WHERE HAIR_COLOR(image) = 'gray' OR HAIR_COLOR(image) = 'blond' \
             GROUP BY HAIR_COLOR(image) \
             ORACLE LIMIT 2000 WITH PROBABILITY 0.95",
        )
        .unwrap();
        assert_eq!(q.primary_agg().func, AggFunc::Percentage);
        assert_eq!(q.group_by.as_deref(), Some("HAIR_COLOR"));
        assert_eq!(
            q.predicate.atom_keys(),
            vec!["HAIR_COLOR=gray".to_string(), "HAIR_COLOR=blond".to_string()]
        );
    }

    #[test]
    fn defaults_probability_when_omitted() {
        let q = parse_query(
            "SELECT COUNT(*) FROM emails WHERE is_spam ORACLE LIMIT 500",
        )
        .unwrap();
        assert_eq!(q.probability, 0.95);
        assert_eq!(q.primary_agg().expr, "*");
        assert!(q.proxy.is_none());
    }

    #[test]
    fn parses_multi_aggregate_select_lists() {
        let q = parse_query(
            "SELECT COUNT(*), SUM(views), AVG(views) FROM news WHERE is_interesting \
             ORACLE LIMIT 5000 WITH PROBABILITY 0.95",
        )
        .unwrap();
        assert_eq!(q.aggs.len(), 3);
        assert_eq!(q.aggs[0], AggItem { func: AggFunc::Count, expr: "*".into() });
        assert_eq!(q.aggs[1], AggItem { func: AggFunc::Sum, expr: "views".into() });
        assert_eq!(q.aggs[2], AggItem { func: AggFunc::Avg, expr: "views".into() });
        assert!(q.group_by.is_none());
    }

    #[test]
    fn multi_aggregate_list_allows_a_trailing_projected_key() {
        // Aggregates, then a projected key, then GROUP BY — all accepted.
        let q = parse_query(
            "SELECT COUNT(frame), AVG(views), person FROM news WHERE seen(frame) \
             GROUP BY person ORACLE LIMIT 100",
        )
        .unwrap();
        assert_eq!(q.aggs.len(), 2);
        assert_eq!(q.group_by.as_deref(), Some("person"));
        // The projected key must be last: a key before an aggregate fails.
        assert!(parse_query(
            "SELECT COUNT(frame), person, AVG(views) FROM news WHERE seen(frame) \
             GROUP BY person ORACLE LIMIT 100",
        )
        .is_err());
        // A lone trailing comma is rejected.
        assert!(parse_query(
            "SELECT COUNT(*), FROM news WHERE seen ORACLE LIMIT 100",
        )
        .is_err());
    }

    #[test]
    fn parses_not_and_parentheses_with_precedence() {
        let q = parse_query(
            "SELECT AVG(x) FROM t WHERE NOT a AND (b OR c) ORACLE LIMIT 100",
        )
        .unwrap();
        // NOT binds tighter than AND; parens force the OR.
        match &q.predicate {
            BoolExpr::And(l, r) => {
                assert!(matches!(l.as_ref(), BoolExpr::Not(_)));
                assert!(matches!(r.as_ref(), BoolExpr::Or(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_queries_with_positions() {
        assert!(parse_query("SELECT MAX(x) FROM t WHERE p ORACLE LIMIT 10").is_err());
        assert!(parse_query("SELECT AVG(x) FROM t ORACLE LIMIT 10").is_err()); // no WHERE
        assert!(parse_query("SELECT AVG(x) FROM t WHERE p").is_err()); // no ORACLE LIMIT
        assert!(parse_query("SELECT AVG(x), k FROM t WHERE p ORACLE LIMIT 5").is_err()); // projection without GROUP BY
        let err = parse_query("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 10 trailing garbage")
            .unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }));
    }

    #[test]
    fn semicolon_is_accepted() {
        assert!(parse_query("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 10;").is_ok());
    }

    #[test]
    fn placeholders_parse_in_limit_and_probability() {
        let q = parse_query(
            "SELECT AVG(x) FROM t WHERE p ORACLE LIMIT ? WITH PROBABILITY ?",
        )
        .unwrap();
        assert!(q.placeholders.oracle_limit);
        assert!(q.placeholders.probability);
        assert!(q.placeholders.any());
        // Inert defaults back the placeholder fields.
        assert_eq!(q.oracle_limit, 0);
        assert_eq!(q.probability, 0.95);

        // Each placeholder works independently of the other.
        let q = parse_query("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT ?").unwrap();
        assert!(q.placeholders.oracle_limit && !q.placeholders.probability);
        let q = parse_query(
            "SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 100 WITH PROBABILITY ?",
        )
        .unwrap();
        assert!(!q.placeholders.oracle_limit && q.placeholders.probability);
        assert_eq!(q.oracle_limit, 100);
    }

    #[test]
    fn parses_until_ci_width_clause() {
        let q = parse_query(
            "SELECT AVG(x) FROM t WHERE p UNTIL CI WIDTH < 0.5 MAX ORACLE LIMIT 1000",
        )
        .unwrap();
        assert_eq!(q.until_width, Some(0.5));
        assert!(!q.placeholders.until_width);
        assert_eq!(q.oracle_limit, 1000);

        // Group-by queries accept the clause too (after GROUP BY).
        let q = parse_query(
            "SELECT COUNT(frame), person FROM news WHERE seen(frame) GROUP BY person \
             UNTIL CI WIDTH < 2 MAX ORACLE LIMIT 500",
        )
        .unwrap();
        assert_eq!(q.until_width, Some(2.0));
        assert_eq!(q.group_by.as_deref(), Some("person"));

        // Absent clause → no early stopping.
        let q = parse_query("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 100").unwrap();
        assert_eq!(q.until_width, None);
    }

    #[test]
    fn until_ci_width_placeholder_defers_the_target() {
        let q = parse_query(
            "SELECT AVG(x) FROM t WHERE p UNTIL CI WIDTH < ? MAX ORACLE LIMIT 1000",
        )
        .unwrap();
        assert!(q.placeholders.until_width);
        assert!(q.placeholders.any());
        assert_eq!(q.until_width, Some(0.0), "inert default backs the placeholder");
    }

    #[test]
    fn until_ci_width_rejects_malformed_clauses() {
        // Missing MAX: the budget cap keyword is mandatory.
        assert!(parse_query(
            "SELECT AVG(x) FROM t WHERE p UNTIL CI WIDTH < 0.5 ORACLE LIMIT 1000",
        )
        .is_err());
        // Missing `<`.
        assert!(parse_query(
            "SELECT AVG(x) FROM t WHERE p UNTIL CI WIDTH 0.5 MAX ORACLE LIMIT 1000",
        )
        .is_err());
        // Missing WIDTH.
        assert!(parse_query(
            "SELECT AVG(x) FROM t WHERE p UNTIL CI < 0.5 MAX ORACLE LIMIT 1000",
        )
        .is_err());
        // Missing the width value entirely.
        assert!(parse_query(
            "SELECT AVG(x) FROM t WHERE p UNTIL CI WIDTH < MAX ORACLE LIMIT 1000",
        )
        .is_err());
        // The clause must precede ORACLE LIMIT, not follow it.
        assert!(parse_query(
            "SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 1000 UNTIL CI WIDTH < 0.5 MAX",
        )
        .is_err());
        // The dialect has no minus operator, so a negative width cannot
        // even lex.
        assert!(parse_query(
            "SELECT AVG(x) FROM t WHERE p UNTIL CI WIDTH < -1 MAX ORACLE LIMIT 1000",
        )
        .is_err());
        // Zero parses; it is rejected at run time with BadTargetWidth.
        let q = parse_query(
            "SELECT AVG(x) FROM t WHERE p UNTIL CI WIDTH < 0 MAX ORACLE LIMIT 1000",
        )
        .unwrap();
        assert_eq!(q.until_width, Some(0.0));
    }

    #[test]
    fn placeholders_are_rejected_outside_limit_and_probability() {
        assert!(parse_query("SELECT AVG(?) FROM t WHERE p ORACLE LIMIT 10").is_err());
        assert!(parse_query("SELECT AVG(x) FROM ? WHERE p ORACLE LIMIT 10").is_err());
        assert!(parse_query("SELECT AVG(x) FROM t WHERE ? ORACLE LIMIT 10").is_err());
        assert!(parse_query("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 10 USING ?").is_err());
    }

    #[test]
    fn parse_statement_dispatches_to_select() {
        let s = parse_statement("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 10").unwrap();
        match s {
            Statement::Select(q) => assert_eq!(q.table, "t"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_create_proxy_with_every_clause() {
        let s = parse_statement(
            "CREATE PROXY spamnet ON trec05p(is_spam) USING logistic CALIBRATED \
             TRAIN LIMIT 2,000;",
        )
        .unwrap();
        match s {
            Statement::CreateProxy(c) => {
                assert_eq!(c.name, "spamnet");
                assert_eq!(c.table, "trec05p");
                assert_eq!(c.predicate, "is_spam");
                assert_eq!(c.family, Some(ProxyFamily::Logistic));
                assert!(c.calibrated);
                assert_eq!(c.train_limit, Some(2_000));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_proxy_clauses_are_optional_and_case_insensitive() {
        let s = parse_statement("create proxy p on t(is_spam)").unwrap();
        match s {
            Statement::CreateProxy(c) => {
                assert_eq!(c.family, None, "omitted USING auto-selects the family");
                assert!(!c.calibrated);
                assert_eq!(c.train_limit, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = parse_statement("CREATE PROXY p ON t(is_spam) USING KEYWORD").unwrap();
        match s {
            Statement::CreateProxy(c) => assert_eq!(c.family, Some(ProxyFamily::Keyword)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_proxy_rejects_malformed_statements() {
        // Unknown family.
        assert!(parse_statement("CREATE PROXY p ON t(is_spam) USING quantum").is_err());
        // Missing pieces.
        assert!(parse_statement("CREATE PROXY p ON t USING keyword").is_err());
        assert!(parse_statement("CREATE PROXY ON t(is_spam)").is_err());
        assert!(parse_statement("CREATE PROXY p ON t(is_spam) TRAIN 100").is_err());
        // Trailing garbage.
        assert!(parse_statement("CREATE PROXY p ON t(is_spam) extra").is_err());
    }

    #[test]
    fn parses_show_proxies_with_and_without_table() {
        assert_eq!(parse_statement("SHOW PROXIES").unwrap(), Statement::ShowProxies(None));
        assert_eq!(
            parse_statement("show proxies from trec05p;").unwrap(),
            Statement::ShowProxies(Some("trec05p".to_string()))
        );
        assert!(parse_statement("SHOW PROXIES FROM").is_err());
        assert!(parse_statement("SHOW TABLES").is_err());
    }
}

#[cfg(test)]
mod robustness {
    use super::{parse_query, parse_statement};
    use proptest::prelude::*;

    proptest! {
        /// The parser must never panic — arbitrary input yields Ok or Err.
        #[test]
        fn parser_never_panics_on_arbitrary_input(input in "\\PC*") {
            let _ = parse_query(&input);
            let _ = parse_statement(&input);
        }

        /// Near-miss inputs built from dialect fragments also must not
        /// panic (these reach deeper parser states than random bytes).
        #[test]
        fn parser_never_panics_on_fragment_soup(
            parts in proptest::collection::vec(
                prop_oneof![
                    Just("SELECT"), Just("AVG"), Just("("), Just(")"),
                    Just("FROM"), Just("WHERE"), Just("AND"), Just("OR"),
                    Just("NOT"), Just("GROUP"), Just("BY"), Just("ORACLE"),
                    Just("LIMIT"), Just("USING"), Just("WITH"),
                    Just("PROBABILITY"), Just("x"), Just("1"), Just("0.5"),
                    Just("'s'"), Just(","), Just("="), Just(">"), Just("?"),
                    Just("UNTIL"), Just("CI"), Just("WIDTH"), Just("MAX"), Just("<"),
                    Just("CREATE"), Just("PROXY"), Just("ON"), Just("CALIBRATED"),
                    Just("TRAIN"), Just("SHOW"), Just("PROXIES"),
                ],
                0..25,
            ),
        ) {
            let input = parts.join(" ");
            let _ = parse_query(&input);
            let _ = parse_statement(&input);
        }
    }
}
