//! The one planner behind every execution surface.
//!
//! `parse → plan → run` is split so that planning (catalog resolution,
//! proxy-score selection, strategy choice) happens **once** per statement
//! and the product — a [`QueryPlan`] — is consumed by every caller:
//!
//! * [`crate::Session::execute`] plans and runs in one call;
//! * [`crate::Prepared`] keeps the plan and re-runs it under new bindings
//!   without re-parsing or re-planning;
//! * `EXPLAIN` ([`explain_plan`]) renders the *same* plan `run_plan`
//!   executes, so the printed strategy, budget split, and cache occupancy
//!   can never drift from what actually runs;
//! * the deprecated [`crate::Executor`] shim plans per call, preserving
//!   its historical behavior bit for bit.
//!
//! All randomness stays in the caller-supplied RNG; planning itself is
//! deterministic and spends no oracle calls.

use crate::ast::Query;
use crate::catalog::Catalog;
use crate::engine::EngineOptions;
use crate::exec::{AggRow, GroupRow, QueryError, QueryResult, QuerySnapshot};
use abae_core::batcher::{GovernedOracle, OracleBatcher};
use abae_core::config::{AbaeConfig, Aggregate, BootstrapConfig};
use abae_core::groupby::{
    groupby_single_oracle_progressive, groupby_single_oracle_with_ci, GroupByConfig,
    GroupSnapshot,
};
use abae_core::multipred::{expression_oracle, PredExpr};
use abae_core::two_stage::{ProgressiveOptions, Snapshot};
use abae_data::columnar::F64Column;
use abae_data::{CachedOracle, Oracle, SingleGroupOracle, Table, TrainedProxy};
use abae_stats::bootstrap::ConfidenceInterval;
use rand::Rng;
use std::sync::Arc;

/// Execution context a statement runs under: which session is asking, and
/// the engine's oracle batcher (the cross-session admission controller).
///
/// Every labeling oracle the planner builds is wrapped in a
/// [`GovernedOracle`] carrying this context, so concurrent sessions'
/// label requests for the same `(table, predicate)` can be coalesced into
/// shared invocations and per-session spend is attributed on the batcher's
/// ledger. With `batcher: None` (the deprecated `Executor` shim) the wrap
/// is a transparent passthrough — behavior is byte-identical to the
/// pre-governor engine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecCtx<'a> {
    /// Requesting session id (0 for detached/legacy callers).
    pub session: u64,
    /// The engine's batcher, or `None` for detached callers.
    pub batcher: Option<&'a OracleBatcher>,
}

impl ExecCtx<'_> {
    /// A context with no batcher and session 0 — the deprecated
    /// `Executor` shim's view of the world, preserved bit for bit.
    pub fn detached() -> ExecCtx<'static> {
        ExecCtx { session: 0, batcher: None }
    }
}

/// The batcher coalescing key for a scalar query: requests coalesce only
/// when both the table and the canonical predicate rendering agree —
/// i.e. when the same oracle model would serve both.
pub(crate) fn governor_key(table: &str, pred_key: &str) -> String {
    format!("{table}/{pred_key}")
}

/// The coalescing key for group-by labeling: the single group oracle is
/// per-table, so the key carries a marker no predicate rendering can
/// produce instead of a predicate.
fn governor_group_key(table: &str) -> String {
    format!("{table}//group-oracle")
}

/// Where a scalar plan's stratification scores come from.
///
/// The seed engine hardwired "stratification scores = the predicate's
/// `proxy` column"; this abstraction is what lets one planner serve
/// precomputed columns, the §3.3 combination of several columns, and
/// proxies trained *in-engine* (`CREATE PROXY`) whose full-table score
/// vector was materialized in parallel batches through `core::pipeline`
/// at training time. `EXPLAIN` renders [`ScoreSource::describe`], so the
/// reported provenance always matches the scores execution stratifies by.
#[derive(Debug, Clone)]
pub enum ScoreSource {
    /// A precomputed proxy column of the table (`USING <column>`).
    Column {
        /// Resolved column name.
        name: String,
        /// The column's scores — an `Arc`-backed columnar view, so
        /// binding it into a plan is O(1), not a copy.
        scores: F64Column,
    },
    /// The §3.3 combination of the predicates' own columns (the default
    /// when `USING` is omitted; for a single bare atom the combination is
    /// the identity).
    Combined {
        /// The combined predicate columns, in atom order.
        columns: Vec<String>,
        /// Combined scores, materialized at plan time.
        scores: Vec<f64>,
    },
    /// A catalog-registered trained model (`USING <model>`); the scores
    /// were computed over the whole table when `CREATE PROXY` ran.
    Model(
        /// The registered artifact.
        Arc<TrainedProxy>,
    ),
}

impl ScoreSource {
    /// The stratification scores, one per record.
    pub fn scores(&self) -> &[f64] {
        match self {
            ScoreSource::Column { scores, .. } => scores.as_slice(),
            ScoreSource::Combined { scores, .. } => scores,
            ScoreSource::Model(proxy) => &proxy.scores,
        }
    }

    /// One-line provenance for `EXPLAIN`: column vs model, and for models
    /// the training spend and measured calibration error.
    pub fn describe(&self) -> String {
        match self {
            ScoreSource::Column { name, .. } => {
                format!("column `{name}` (precomputed scores)")
            }
            ScoreSource::Combined { columns, .. } => format!(
                "predicate column{} {} combined by the \u{a7}3.3 rules",
                if columns.len() == 1 { "" } else { "s" },
                columns
                    .iter()
                    .map(|c| format!("`{c}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            ScoreSource::Model(p) => format!(
                "trained model `{}` — {}{}{}; {} training labels, {} oracle calls spent, \
                 ECE {:.4}",
                p.name,
                p.summary,
                if p.calibrated { ", calibrated" } else { "" },
                if p.auto_selected { ", family auto-selected (\u{a7}3.4)" } else { "" },
                p.train_limit,
                p.oracle_spend,
                p.ece,
            ),
        }
    }
}

/// Physical strategy chosen for a query, with everything resolved at plan
/// time that does not depend on run-time bindings.
#[derive(Debug, Clone)]
pub(crate) enum PlanKind {
    /// Scalar (non-grouped) query: one lowered predicate expression, the
    /// stratification score source (named `USING` proxy — column or
    /// trained model — or the §3.3 combination), and the canonical
    /// label-store key.
    Scalar {
        /// Lowered predicate over resolved column indices.
        expr: PredExpr,
        /// Stratification scores and their provenance.
        source: ScoreSource,
        /// Canonical label-store key for `(table, predicate)`.
        pred_key: String,
    },
    /// `GROUP BY` query in the single-oracle setting.
    GroupBy {
        /// Group names, in the table's group order.
        groups: Vec<String>,
    },
}

/// A planned query: parsed text plus catalog resolution, ready to run any
/// number of times. Owns no table borrows, so it can outlive the planning
/// call and cross threads (the engine's tables are immutable after build).
#[derive(Debug, Clone)]
pub(crate) struct QueryPlan {
    /// The parsed query.
    pub query: Query,
    /// Resolved predicate column indices, in atom order.
    pub columns: Vec<usize>,
    /// Resolved predicate column names, aligned with `columns`.
    pub column_names: Vec<String>,
    /// The chosen physical strategy.
    pub kind: PlanKind,
}

/// Run-time parameter bindings for a plan's `?` placeholders. A bound
/// value also overrides a literal, which is how `Prepared::with_budget`
/// re-runs a fully literal statement under a new budget.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct Bindings {
    /// Bound oracle budget (`ORACLE LIMIT ?`).
    pub oracle_limit: Option<usize>,
    /// Bound success probability (`WITH PROBABILITY ?`).
    pub probability: Option<f64>,
    /// Bound early-stop CI width target (`UNTIL CI WIDTH < ?`).
    pub until_width: Option<f64>,
}

/// The effective oracle budget under `bindings`, or an unbound-placeholder
/// error.
fn effective_budget(query: &Query, bindings: &Bindings) -> Result<usize, QueryError> {
    match (bindings.oracle_limit, query.placeholders.oracle_limit) {
        (Some(n), _) => Ok(n),
        (None, false) => Ok(query.oracle_limit),
        (None, true) => Err(QueryError::UnboundParameter("ORACLE LIMIT ?")),
    }
}

/// The effective success probability under `bindings`, or an
/// unbound-placeholder error.
fn effective_probability(query: &Query, bindings: &Bindings) -> Result<f64, QueryError> {
    match (bindings.probability, query.placeholders.probability) {
        (Some(p), _) => Ok(p),
        (None, false) => Ok(query.probability),
        (None, true) => Err(QueryError::UnboundParameter("WITH PROBABILITY ?")),
    }
}

/// The effective early-stop CI width target under `bindings` (`None` when
/// the query has no `UNTIL CI WIDTH` clause), or an unbound-placeholder
/// error.
fn effective_width(query: &Query, bindings: &Bindings) -> Result<Option<f64>, QueryError> {
    match (bindings.until_width, query.placeholders.until_width) {
        (Some(w), _) => Ok(Some(w)),
        (None, false) => Ok(query.until_width),
        (None, true) => Err(QueryError::UnboundParameter("UNTIL CI WIDTH < ?")),
    }
}

/// Renders a lowered predicate expression as its label-store key. The one
/// rendering shared by execution, proxy training, and `EXPLAIN`, so plan
/// occupancy always reads the entry execution writes — and verdicts bought
/// while training a proxy are the same entries later queries hit.
pub(crate) fn predicate_key(expr: &PredExpr) -> String {
    format!("{expr:?}")
}

/// Every proxy name a table answers `USING` with: predicate columns in
/// table order, then binding aliases (sorted), then trained artifacts in
/// registration order.
pub(crate) fn available_proxies(catalog: &Catalog, table: &Table) -> Vec<String> {
    let mut names: Vec<String> =
        table.predicates().iter().map(|p| p.name().to_string()).collect();
    let later = catalog
        .bound_keys(table.name())
        .into_iter()
        .chain(catalog.proxy_registry().names(table.name()));
    for name in later {
        if !names.contains(&name) {
            names.push(name);
        }
    }
    names
}

/// Plans `query` against `catalog`: resolves every predicate atom to a
/// column, picks the physical strategy, and materializes the
/// stratification scores. Fails with the same errors execution would, so
/// `prepare` and `EXPLAIN` surface problems before any budget is spent.
pub(crate) fn plan_query(catalog: &Catalog, query: &Query) -> Result<QueryPlan, QueryError> {
    let table = catalog
        .table(&query.table)
        .ok_or_else(|| QueryError::UnknownTable(query.table.clone()))?;

    // Resolve every atom to a predicate column index.
    let keys = query.predicate.atom_keys();
    let mut columns = Vec::with_capacity(keys.len());
    let mut column_names = Vec::with_capacity(keys.len());
    for key in &keys {
        let col = catalog.resolve(&query.table, key).ok_or_else(|| {
            QueryError::UnresolvedPredicate { atom: key.clone(), table: query.table.clone() }
        })?;
        columns.push(table.predicate_index(&col).map_err(QueryError::Table)?);
        column_names.push(col);
    }
    let index_of = |key: &str| -> usize {
        let pos = keys.iter().position(|k| k == key).expect("key collected above");
        columns[pos]
    };

    let kind = if query.group_by.is_some() {
        if query.aggs.len() > 1 {
            return Err(QueryError::Unsupported(
                "GROUP BY with a multi-aggregate SELECT list".to_string(),
            ));
        }
        let group_key = table.group_key().ok_or_else(|| {
            QueryError::Unsupported(format!("table `{}` has no group key", query.table))
        })?;
        let groups = group_key.names().to_vec();
        if columns.len() != groups.len() {
            return Err(QueryError::Unsupported(format!(
                "group-by query names {} predicates but table `{}` has {} groups",
                columns.len(),
                query.table,
                groups.len()
            )));
        }
        PlanKind::GroupBy { groups }
    } else {
        let expr = query.predicate.to_pred_expr(&index_of);
        // Stratification scores: the `USING` proxy when one is named — a
        // precomputed column/binding first, then a trained model from the
        // catalog's registry (an unresolvable name is an error listing
        // what exists, not a silent fallback) — otherwise the §3.3
        // combination of the predicates' own proxies.
        let source = match query.proxy.as_deref() {
            Some(p) => match catalog.resolve(&query.table, p) {
                Some(col) => ScoreSource::Column {
                    scores: table.predicate(&col).map_err(QueryError::Table)?.proxy_column().clone(),
                    name: col,
                },
                None => match catalog.proxy_registry().get(&query.table, p) {
                    Some(model) => ScoreSource::Model(model),
                    None => {
                        return Err(QueryError::UnknownProxy {
                            proxy: p.to_string(),
                            table: query.table.clone(),
                            available: available_proxies(catalog, table),
                        })
                    }
                },
            },
            None => ScoreSource::Combined {
                columns: column_names.clone(),
                scores: abae_core::multipred::table_combined_scores(table, &expr)
                    .map_err(QueryError::Table)?,
            },
        };
        let pred_key = predicate_key(&expr);
        PlanKind::Scalar { expr, source, pred_key }
    };

    Ok(QueryPlan { query: query.clone(), columns, column_names, kind })
}

/// Executes a plan with the given knobs and bindings. The RNG is the only
/// source of randomness; for a fixed stream the result is bit-identical
/// regardless of thread count, cache state, or concurrent sessions.
///
/// A query with an `UNTIL CI WIDTH` clause routes through the anytime
/// executors and may stop before the budget cap; everything else takes the
/// blocking path unchanged.
pub(crate) fn run_plan<R: Rng + ?Sized>(
    catalog: &Catalog,
    plan: &QueryPlan,
    opts: &EngineOptions,
    bindings: &Bindings,
    rng: &mut R,
    ctx: &ExecCtx<'_>,
) -> Result<QueryResult, QueryError> {
    run_plan_inner(catalog, plan, opts, bindings, rng, ctx, None)
}

/// Executes a plan progressively: `on_snapshot` fires after every labeling
/// chunk with a statistically valid intermediate answer for the same query
/// (estimates from the labels so far; CIs from a forked RNG stream). When
/// no `UNTIL CI WIDTH` target stops the run early, the returned result is
/// bit-identical to [`run_plan`] with the same stream — snapshots change
/// when progress is reported, never what is drawn.
pub(crate) fn run_plan_progressive<R: Rng + ?Sized>(
    catalog: &Catalog,
    plan: &QueryPlan,
    opts: &EngineOptions,
    bindings: &Bindings,
    rng: &mut R,
    ctx: &ExecCtx<'_>,
    on_snapshot: &mut dyn FnMut(&QuerySnapshot),
) -> Result<QueryResult, QueryError> {
    run_plan_inner(catalog, plan, opts, bindings, rng, ctx, Some(on_snapshot))
}

#[allow(clippy::too_many_arguments)]
fn run_plan_inner<R: Rng + ?Sized>(
    catalog: &Catalog,
    plan: &QueryPlan,
    opts: &EngineOptions,
    bindings: &Bindings,
    rng: &mut R,
    ctx: &ExecCtx<'_>,
    mut observer: Option<&mut dyn FnMut(&QuerySnapshot)>,
) -> Result<QueryResult, QueryError> {
    let query = &plan.query;
    let budget = effective_budget(query, bindings)?;
    let probability = effective_probability(query, bindings)?;
    let width = effective_width(query, bindings)?;
    let table = catalog
        .table(&query.table)
        .ok_or_else(|| QueryError::UnknownTable(query.table.clone()))?;

    match &plan.kind {
        PlanKind::Scalar { expr, source, pred_key } => {
            let scores = source.scores();
            // The per-query expression oracle, governed: every labeling
            // chunk is admitted to a (possibly cross-session-shared)
            // invocation before labeling. Layered *inside* the cached
            // oracle below, so records the label store answers never
            // consume a batch slot (cache-aware scheduling).
            let oracle = GovernedOracle::new(
                expression_oracle(table, expr).map_err(QueryError::Table)?,
                ctx.batcher,
                governor_key(&query.table, pred_key),
                ctx.session,
            );
            let config = AbaeConfig {
                strata: opts.strata,
                budget,
                stage1_fraction: opts.stage1_fraction,
                bootstrap: BootstrapConfig {
                    trials: opts.bootstrap_trials,
                    alpha: 1.0 - probability,
                },
                exec: opts.exec,
                ..Default::default()
            };
            // One labeling pass answers every aggregate of the SELECT list.
            let aggs: Vec<Aggregate> = query.aggs.iter().map(|a| a.func.to_core()).collect();
            if width.is_none() && observer.is_none() {
                // Blocking path, byte for byte the pre-anytime executor.
                let (multi, cache_hits, cache_misses) = match catalog.label_store() {
                    // Cross-query reuse: route labeling through the store's
                    // entry for this (table, predicate) pair — cached
                    // verdicts are free.
                    Some(store) => {
                        let cached = CachedOracle::new(oracle, store, &query.table, pred_key);
                        let multi = abae_core::two_stage::run_abae_multi_with_ci(
                            scores, &cached, &config, &aggs, rng,
                        )
                        .map_err(QueryError::Config)?;
                        (multi, cached.hits(), cached.misses())
                    }
                    None => (
                        abae_core::two_stage::run_abae_multi_with_ci(
                            scores, &oracle, &config, &aggs, rng,
                        )
                        .map_err(QueryError::Config)?,
                        0,
                        0,
                    ),
                };
                if cache_hits > 0 {
                    if let Some(batcher) = ctx.batcher {
                        // Cache-served records never reached the batcher;
                        // report them so EXPLAIN/stats show the slots the
                        // warm store saved.
                        batcher.note_cache_served(cache_hits);
                    }
                }
                let rows = agg_rows(query, &multi);
                Ok(QueryResult::new(rows, multi.oracle_calls, cache_hits, cache_misses, None))
            } else {
                let progressive =
                    ProgressiveOptions { chunk: None, target_ci_width: width };
                let mut emit = |snap: &Snapshot| {
                    if let Some(obs) = observer.as_deref_mut() {
                        obs(&QuerySnapshot {
                            rows: rows_from_answers(query, &snap.answers),
                            groups: None,
                            budget_spent: snap.budget_spent,
                            done: snap.done,
                        });
                    }
                };
                let (multi, cache_hits, cache_misses) = match catalog.label_store() {
                    Some(store) => {
                        let cached = CachedOracle::new(oracle, store, &query.table, pred_key);
                        let multi = abae_core::two_stage::run_abae_multi_progressive(
                            scores, &cached, &config, &aggs, &progressive, rng, &mut emit,
                        )
                        .map_err(QueryError::Config)?;
                        (multi, cached.hits(), cached.misses())
                    }
                    None => (
                        abae_core::two_stage::run_abae_multi_progressive(
                            scores, &oracle, &config, &aggs, &progressive, rng, &mut emit,
                        )
                        .map_err(QueryError::Config)?,
                        0,
                        0,
                    ),
                };
                if cache_hits > 0 {
                    if let Some(batcher) = ctx.batcher {
                        // Cache-served records never reached the batcher;
                        // report them so EXPLAIN/stats show the slots the
                        // warm store saved.
                        batcher.note_cache_served(cache_hits);
                    }
                }
                let rows = agg_rows(query, &multi);
                Ok(QueryResult::new(rows, multi.oracle_calls, cache_hits, cache_misses, None))
            }
        }
        PlanKind::GroupBy { groups } => run_groupby(
            plan, table, groups, budget, probability, width, opts, rng, ctx, observer,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_groupby<R: Rng + ?Sized>(
    plan: &QueryPlan,
    table: &Table,
    groups: &[String],
    budget: usize,
    probability: f64,
    width: Option<f64>,
    opts: &EngineOptions,
    rng: &mut R,
    ctx: &ExecCtx<'_>,
    mut observer: Option<&mut dyn FnMut(&QuerySnapshot)>,
) -> Result<QueryResult, QueryError> {
    let query = &plan.query;
    let agg = query.primary_agg().clone();
    // Per-group proxies in group order: the atom resolved for position g
    // must be the per-group predicate of group g.
    let proxies: Vec<&[f64]> = plan
        .columns
        .iter()
        .map(|&c| table.predicates()[c].proxy())
        .collect();
    // Governed like the scalar path: each batch of group labels is
    // admitted before labeling; the instance is per-query, so its meter
    // charges only this session's records even when invocations are
    // shared across sessions.
    let oracle = GovernedOracle::new(
        SingleGroupOracle::new(table).expect("group key validated at plan time"),
        ctx.batcher,
        governor_group_key(&query.table),
        ctx.session,
    );
    // Spend is reported as a delta from here, so attribution stays exact
    // even for an oracle instance that has labeled before (today each
    // query builds a fresh instance; the delta makes that structural
    // rather than assumed).
    let calls_before = oracle.calls();
    let cfg = GroupByConfig {
        strata: opts.strata,
        budget,
        stage1_fraction: opts.stage1_fraction,
        exec: opts.exec,
        ..Default::default()
    };
    let bootstrap = BootstrapConfig { trials: opts.bootstrap_trials, alpha: 1.0 - probability };

    // Builds the query-level rows (group rows plus the summary aggregate
    // row) from core per-group estimates, applying PERCENTAGE scaling.
    let to_rows = |estimates: &[abae_core::groupby::GroupEstimateWithCi]| {
        let rows: Vec<GroupRow> = estimates
            .iter()
            .map(|e| GroupRow {
                name: groups[e.group as usize].clone(),
                estimate: scale_percentage(agg.func, e.estimate),
                ci: e.ci.map(|ci| scale_percentage_ci(agg.func, ci)),
            })
            .collect();
        let mean = rows.iter().map(|r| r.estimate).sum::<f64>() / rows.len().max(1) as f64;
        let summary = AggRow {
            func: agg.func,
            expr: agg.expr.clone(),
            estimate: mean,
            ci: None,
        };
        (summary, rows)
    };

    if width.is_none() && observer.is_none() {
        // Blocking path, byte for byte the pre-anytime executor.
        let estimates = groupby_single_oracle_with_ci(&proxies, &oracle, &cfg, &bootstrap, rng)
            .map_err(QueryError::GroupBy)?;
        let (summary, rows) = to_rows(&estimates);
        Ok(QueryResult::new(vec![summary], oracle.calls() - calls_before, 0, 0, Some(rows)))
    } else {
        let progressive = ProgressiveOptions { chunk: None, target_ci_width: width };
        let result = groupby_single_oracle_progressive(
            &proxies,
            &oracle,
            &cfg,
            &bootstrap,
            &progressive,
            rng,
            |snap: &GroupSnapshot| {
                if let Some(obs) = observer.as_deref_mut() {
                    let (summary, rows) = to_rows(&snap.groups);
                    obs(&QuerySnapshot {
                        rows: vec![summary],
                        groups: Some(rows),
                        budget_spent: snap.budget_spent,
                        done: snap.done,
                    });
                }
            },
        )
        .map_err(QueryError::GroupBy)?;
        let (summary, rows) = to_rows(&result.groups);
        Ok(QueryResult::new(vec![summary], result.oracle_calls, 0, 0, Some(rows)))
    }
}

/// `EXPLAIN`: renders the physical plan — the chosen algorithm, the
/// resolved predicate columns, the budget split, and the label-cache state
/// — without spending any oracle calls. This consumes the *same*
/// [`QueryPlan`] that [`run_plan`] executes; there is no second planning
/// path for the human-readable output to drift from.
pub(crate) fn explain_plan(
    catalog: &Catalog,
    plan: &QueryPlan,
    opts: &EngineOptions,
    bindings: &Bindings,
    ctx: &ExecCtx<'_>,
) -> Result<String, QueryError> {
    let query = &plan.query;
    let table = catalog
        .table(&query.table)
        .ok_or_else(|| QueryError::UnknownTable(query.table.clone()))?;
    let keys = query.predicate.atom_keys();
    let mut lines = Vec::new();
    lines.push(format!("query  : {query}"));
    lines.push(format!("table  : {} ({} records)", table.name(), table.len()));
    for (key, col) in keys.iter().zip(&plan.column_names) {
        lines.push(format!("atom   : {key} -> predicate column `{col}`"));
    }
    let strategy = match &plan.kind {
        PlanKind::GroupBy { groups } => format!(
            "ABae-GroupBy (single oracle, minimax allocation over {} groups)",
            groups.len()
        ),
        PlanKind::Scalar { .. } if keys.len() > 1 => {
            "ABae-MultiPred (combined proxy scores, one oracle call per record)".to_string()
        }
        PlanKind::Scalar { .. } => "ABae two-stage stratified sampling".to_string(),
    };
    lines.push(format!("plan   : {strategy}"));
    // Proxy provenance: which scores stratify the sampling, and — for
    // in-engine-trained models — what the training cost and measured
    // calibration error were.
    if let PlanKind::Scalar { source, .. } = &plan.kind {
        lines.push(format!("proxy  : {}", source.describe()));
    }
    if query.aggs.len() > 1 {
        lines.push(format!(
            "aggs   : {} aggregates answered from one shared labeling pass",
            query.aggs.len()
        ));
    }
    // The split comes from the same `stage_split` execution uses, so the
    // printed plan cannot drift from what actually runs. An unbound
    // placeholder budget has no split yet — say so instead of guessing.
    match effective_budget(query, bindings) {
        Ok(limit) => {
            let split =
                abae_sampling::budget::stage_split(limit, opts.stage1_fraction, opts.strata);
            lines.push(format!(
                "budget : {} oracle calls = stage 1 ({} strata x {}) + stage 2 ({})",
                limit, opts.strata, split.n1_per_stratum, split.n2_total,
            ));
        }
        Err(_) => lines.push(
            "budget : ? oracle calls (placeholder — bind with Prepared::with_budget)".to_string(),
        ),
    }
    // The stopping rule, when the query is anytime: the budget above is a
    // cap, and labeling halts at the first chunk boundary (pilot complete)
    // where every CI is narrower than the target.
    match effective_width(query, bindings) {
        Ok(Some(w)) => lines.push(format!(
            "stop   : UNTIL CI WIDTH < {w} — anytime execution in chunks of {}; \
             the oracle limit is a cap, not a target",
            opts.exec.batch_size,
        )),
        Ok(None) => {}
        Err(_) => lines.push(
            "stop   : UNTIL CI WIDTH < ? (placeholder — bind with Prepared::with_ci_width)"
                .to_string(),
        ),
    }
    lines.push(match (catalog.label_store(), &plan.kind) {
        (Some(_), PlanKind::GroupBy { .. }) => {
            // GROUP BY labeling keeps its own within-query cache but does
            // not consult the cross-query store; say so rather than
            // implying reuse that execution won't deliver.
            "cache  : label store enabled, but not used by GROUP BY \
             (grouped labeling caches within the query only)"
                .to_string()
        }
        (Some(store), PlanKind::Scalar { pred_key, .. }) => format!(
            "cache  : label store enabled — {} verdicts cached for this predicate \
             ({} hits / {} misses lifetime)",
            store.cached_verdicts(&query.table, pred_key),
            store.hits(),
            store.misses(),
        ),
        (None, _) => "cache  : label store disabled (Catalog::enable_label_cache)".to_string(),
    });
    // The engine's oracle batcher, when this statement runs under one
    // (sessions and prepared statements do; the deprecated Executor shim
    // does not): coalescing mode and the engine-lifetime counters.
    if let Some(batcher) = ctx.batcher {
        let stats = batcher.stats();
        lines.push(if batcher.options().coalesce {
            format!(
                "oracle : governed, coalescing on — {} invocations for {} requests \
                 ({} shared batches, {} requests coalesced, {} records cache-served)",
                stats.invocations,
                stats.requests,
                stats.shared_batches,
                stats.coalesced_requests,
                stats.cache_served,
            )
        } else {
            format!(
                "oracle : governed, coalescing off — every request is its own \
                 invocation ({} so far, {} records cache-served)",
                stats.invocations, stats.cache_served,
            )
        });
    }
    match effective_probability(query, bindings) {
        Ok(p) => lines.push(format!(
            "ci     : percentile bootstrap, {} resamples, confidence {}",
            opts.bootstrap_trials, p
        )),
        Err(_) => lines.push(format!(
            "ci     : percentile bootstrap, {} resamples, confidence ? \
             (placeholder — bind with Prepared::with_probability)",
            opts.bootstrap_trials
        )),
    }
    Ok(lines.join("\n"))
}

/// Builds the per-aggregate result rows, applying `PERCENTAGE` scaling to
/// estimate and CI alike.
fn agg_rows(query: &Query, multi: &abae_core::two_stage::MultiAggResult) -> Vec<AggRow> {
    rows_from_answers(query, &multi.answers)
}

/// The row-building shared by final results and progressive snapshots, so
/// an intermediate snapshot scales `PERCENTAGE` exactly like the answer it
/// converges to.
fn rows_from_answers(query: &Query, answers: &[abae_core::AggAnswer]) -> Vec<AggRow> {
    query
        .aggs
        .iter()
        .zip(answers)
        .map(|(item, answer)| AggRow {
            func: item.func,
            expr: item.expr.clone(),
            estimate: scale_percentage(item.func, answer.estimate),
            ci: answer.ci.map(|ci| scale_percentage_ci(item.func, ci)),
        })
        .collect()
}

/// `PERCENTAGE(expr)` is `AVG(expr)` scaled to percent: the statistic is
/// expected to be a 0/1 indicator, and the scaling depends only on the
/// aggregate — never on the value — so the CI scales identically and
/// always brackets the estimate.
fn scale_percentage(agg: crate::ast::AggFunc, estimate: f64) -> f64 {
    if agg == crate::ast::AggFunc::Percentage {
        estimate * 100.0
    } else {
        estimate
    }
}

/// Scales a CI the same way [`scale_percentage`] scales the estimate, so
/// `lo <= estimate <= hi` is preserved.
fn scale_percentage_ci(
    agg: crate::ast::AggFunc,
    ci: ConfidenceInterval,
) -> ConfidenceInterval {
    if agg == crate::ast::AggFunc::Percentage {
        ConfidenceInterval { lo: ci.lo * 100.0, hi: ci.hi * 100.0, confidence: ci.confidence }
    } else {
        ci
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use abae_data::Table;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let n = 400;
        let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.9 } else { 0.1 }).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let t = Table::builder("t", values).predicate("p", labels, proxy).build().unwrap();
        let mut cat = Catalog::new();
        cat.register_table(t);
        cat
    }

    #[test]
    fn planning_is_free_and_reusable() {
        let cat = catalog();
        let q = parse_query("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 10").unwrap();
        let plan = plan_query(&cat, &q).unwrap();
        assert_eq!(plan.columns, vec![0]);
        assert_eq!(plan.column_names, vec!["p".to_string()]);
        match &plan.kind {
            PlanKind::Scalar { source, .. } => {
                assert_eq!(source.scores().len(), 400);
                assert!(matches!(source, ScoreSource::Combined { .. }));
            }
            other => panic!("expected scalar plan, got {other:?}"),
        }
        // The plan is Clone + Send: a prepared statement can own it.
        fn assert_send<T: Send + Clone>(_: &T) {}
        assert_send(&plan);
    }

    #[test]
    fn unbound_placeholders_fail_at_run_not_plan() {
        let cat = catalog();
        let q = parse_query("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT ?").unwrap();
        let plan = plan_query(&cat, &q).expect("placeholders plan fine");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let err = run_plan(
            &cat,
            &plan,
            &EngineOptions::default(),
            &Bindings::default(),
            &mut rng,
            &ExecCtx::detached(),
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::UnboundParameter("ORACLE LIMIT ?")), "{err}");
        // Binding the parameter makes the same plan runnable.
        let bound = Bindings { oracle_limit: Some(50), ..Default::default() };
        let r = run_plan(&cat, &plan, &EngineOptions::default(), &bound, &mut rng, &ExecCtx::detached())
            .unwrap();
        assert!(r.oracle_calls <= 50);
    }

    #[test]
    fn unknown_proxy_listing_includes_binding_aliases() {
        let mut cat = catalog();
        cat.bind_predicate("t", "spamish", "p");
        let q = parse_query("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 10 USING nope").unwrap();
        match plan_query(&cat, &q).unwrap_err() {
            QueryError::UnknownProxy { available, .. } => {
                assert_eq!(available, vec!["p".to_string(), "spamish".to_string()]);
            }
            other => panic!("expected UnknownProxy, got {other:?}"),
        }
        // The alias also *resolves* — the listing matches what works.
        let q = parse_query("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 10 USING spamish").unwrap();
        assert!(plan_query(&cat, &q).is_ok());
    }

    #[test]
    fn bindings_override_literals() {
        let cat = catalog();
        let q = parse_query(
            "SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 4 WITH PROBABILITY 0.95",
        )
        .unwrap();
        let plan = plan_query(&cat, &q).unwrap();
        assert_eq!(effective_budget(&plan.query, &Bindings::default()).unwrap(), 4);
        let b = Bindings {
            oracle_limit: Some(2),
            probability: Some(0.9),
            until_width: Some(0.25),
        };
        assert_eq!(effective_budget(&plan.query, &b).unwrap(), 2);
        assert_eq!(effective_probability(&plan.query, &b).unwrap(), 0.9);
        assert_eq!(effective_width(&plan.query, &b).unwrap(), Some(0.25));
        // No clause, no binding → no early stopping.
        assert_eq!(effective_width(&plan.query, &Bindings::default()).unwrap(), None);
    }

    #[test]
    fn unbound_width_placeholder_fails_at_run() {
        let cat = catalog();
        let q = parse_query(
            "SELECT AVG(x) FROM t WHERE p UNTIL CI WIDTH < ? MAX ORACLE LIMIT 50",
        )
        .unwrap();
        let plan = plan_query(&cat, &q).expect("placeholders plan fine");
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let err = run_plan(
            &cat,
            &plan,
            &EngineOptions::default(),
            &Bindings::default(),
            &mut rng,
            &ExecCtx::detached(),
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::UnboundParameter("UNTIL CI WIDTH < ?")), "{err}");
        let bound = Bindings { until_width: Some(1000.0), ..Default::default() };
        let r = run_plan(&cat, &plan, &EngineOptions::default(), &bound, &mut rng, &ExecCtx::detached())
            .unwrap();
        assert!(r.oracle_calls <= 50);
    }
}
