//! Prepared statements: parse and plan once, re-execute many times.
//!
//! The warm-cache repeat-query path from the label store is the first-class
//! API here: a dashboard prepares its statement once
//! ([`crate::Session::prepare`]), then calls [`Prepared::run`] each refresh
//! — no re-parsing, no re-planning, and (with the engine's label cache
//! warm) zero oracle calls, because every `run` replays the same sampling
//! stream and the store already holds every verdict it draws.
//!
//! Parameters deferred with `?` in the SQL (`ORACLE LIMIT ?`,
//! `WITH PROBABILITY ?`) are bound with [`Prepared::with_budget`] /
//! [`Prepared::with_probability`]; a bound value also overrides a literal,
//! so one prepared statement can sweep budgets.

use crate::ast::Query;
use crate::engine::Engine;
use crate::exec::{QueryError, QueryResult, QuerySnapshot};
use crate::plan::{explain_plan, run_plan, run_plan_progressive, Bindings, ExecCtx, QueryPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A parsed-and-planned statement bound to an [`Engine`], ready to run any
/// number of times. `Send + Sync` and `Clone`: clones share nothing
/// mutable, so a pool of worker threads can each run the same statement.
///
/// Determinism: every [`Prepared::run`] restarts the statement's RNG
/// stream (derived from engine seed, session id, and preparation order),
/// so an identical re-run redraws exactly the same records — with a warm
/// label cache that costs **zero** oracle calls — and a re-run under a new
/// budget spends the oracle only on records the cache has not seen.
#[derive(Debug, Clone)]
pub struct Prepared {
    engine: Engine,
    plan: QueryPlan,
    base_seed: u64,
    /// Owning session's id: labeling requests from every `run` are admitted
    /// through the engine's oracle batcher under this session, so shared
    /// batches attribute spend to the preparing client.
    session: u64,
    budget: Option<usize>,
    probability: Option<f64>,
    ci_width: Option<f64>,
}

impl Prepared {
    pub(crate) fn new(engine: Engine, plan: QueryPlan, base_seed: u64, session: u64) -> Self {
        Self {
            engine,
            plan,
            base_seed,
            session,
            budget: None,
            probability: None,
            ci_width: None,
        }
    }

    fn ctx(&self) -> ExecCtx<'_> {
        ExecCtx { session: self.session, batcher: Some(self.engine.batcher()) }
    }

    /// Binds the oracle budget (`ORACLE LIMIT ?`), or overrides a literal
    /// one.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Binds the success probability (`WITH PROBABILITY ?`), or overrides
    /// a literal one.
    pub fn with_probability(mut self, probability: f64) -> Self {
        self.probability = Some(probability);
        self
    }

    /// Binds the early-stop CI width target (`UNTIL CI WIDTH < ?`), or
    /// overrides a literal one — execution then stops at the first chunk
    /// boundary where the CI is narrower than `width`, spending at most
    /// the oracle limit.
    pub fn with_ci_width(mut self, width: f64) -> Self {
        self.ci_width = Some(width);
        self
    }

    /// Executes the planned statement with the current bindings. Fails
    /// with [`QueryError::UnboundParameter`] if a `?` placeholder was
    /// never bound.
    pub fn run(&self) -> Result<QueryResult, QueryError> {
        let mut rng = StdRng::seed_from_u64(self.base_seed);
        run_plan(
            self.engine.catalog(),
            &self.plan,
            self.engine.options(),
            &self.bindings(),
            &mut rng,
            &self.ctx(),
        )
    }

    /// Executes the planned statement progressively: labeling proceeds in
    /// chunks, and after every chunk a [`QuerySnapshot`] with a
    /// statistically valid intermediate answer is recorded. Returns the
    /// full snapshot sequence plus the final result.
    ///
    /// Determinism: the same RNG stream as [`Prepared::run`] — when no
    /// `UNTIL CI WIDTH` target stops the run early, the final result (and
    /// the last snapshot's rows) is bit-identical to what `run` returns,
    /// for any thread count or chunk size.
    pub fn run_progressive(&self) -> Result<ProgressiveRun, QueryError> {
        let mut rng = StdRng::seed_from_u64(self.base_seed);
        let mut snapshots = Vec::new();
        let result = run_plan_progressive(
            self.engine.catalog(),
            &self.plan,
            self.engine.options(),
            &self.bindings(),
            &mut rng,
            &self.ctx(),
            &mut |snap| snapshots.push(snap.clone()),
        )?;
        Ok(ProgressiveRun { snapshots, result })
    }

    /// `EXPLAIN` for the prepared statement, reflecting the current
    /// bindings (an unbound placeholder budget renders as `?`). Same plan
    /// [`Prepared::run`] executes — no drift possible.
    pub fn explain(&self) -> Result<String, QueryError> {
        explain_plan(
            self.engine.catalog(),
            &self.plan,
            self.engine.options(),
            &self.bindings(),
            &self.ctx(),
        )
    }

    /// The parsed query this statement was planned from.
    pub fn query(&self) -> &Query {
        &self.plan.query
    }

    /// The statement rendered back to SQL (placeholders render as `?`).
    pub fn sql(&self) -> String {
        self.plan.query.to_string()
    }

    fn bindings(&self) -> Bindings {
        Bindings {
            oracle_limit: self.budget,
            probability: self.probability,
            until_width: self.ci_width,
        }
    }
}

/// The record of one [`Prepared::run_progressive`] execution: every
/// per-chunk [`QuerySnapshot`] in emission order, plus the final
/// [`QueryResult`]. Iterate it (`for snap in &run` / `for snap in run`)
/// to replay the snapshot stream.
#[derive(Debug, Clone)]
pub struct ProgressiveRun {
    snapshots: Vec<QuerySnapshot>,
    result: QueryResult,
}

impl ProgressiveRun {
    /// The emitted snapshots, in order. The last one has `done == true`
    /// and carries the same rows as [`ProgressiveRun::result`].
    pub fn snapshots(&self) -> &[QuerySnapshot] {
        &self.snapshots
    }

    /// The final answer — bit-identical to [`Prepared::run`] when no
    /// early stop triggered.
    pub fn result(&self) -> &QueryResult {
        &self.result
    }

    /// Consumes the run, returning the final answer.
    pub fn into_result(self) -> QueryResult {
        self.result
    }
}

impl IntoIterator for ProgressiveRun {
    type Item = QuerySnapshot;
    type IntoIter = std::vec::IntoIter<QuerySnapshot>;

    fn into_iter(self) -> Self::IntoIter {
        self.snapshots.into_iter()
    }
}

impl<'a> IntoIterator for &'a ProgressiveRun {
    type Item = &'a QuerySnapshot;
    type IntoIter = std::slice::Iter<'a, QuerySnapshot>;

    fn into_iter(self) -> Self::IntoIter {
        self.snapshots.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(cache: bool) -> Engine {
        let n = 4000;
        let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
        let t = abae_data::Table::builder("emails", values)
            .predicate("is_spam", labels, proxy)
            .build()
            .unwrap();
        Engine::builder().table(t).bootstrap_trials(50).label_cache(cache).seed(5).build()
    }

    #[test]
    fn prepared_is_send_sync_and_replays_exactly() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<Prepared>();
        let e = engine(false);
        let p = e
            .session()
            .prepare("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT 400")
            .unwrap();
        let a = p.run().unwrap();
        let b = p.run().unwrap();
        assert_eq!(a, b, "each run replays the same stream");
    }

    #[test]
    fn unbound_budget_is_an_error_until_bound() {
        let e = engine(false);
        let p = e
            .session()
            .prepare("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT ?")
            .unwrap();
        assert!(matches!(p.run(), Err(QueryError::UnboundParameter("ORACLE LIMIT ?"))));
        let r = p.with_budget(400).run().unwrap();
        assert!(r.oracle_calls > 0 && r.oracle_calls <= 400);
    }

    #[test]
    fn probability_binding_reaches_the_ci() {
        let e = engine(false);
        let p = e
            .session()
            .prepare(
                "SELECT AVG(links) FROM emails WHERE is_spam \
                 ORACLE LIMIT 400 WITH PROBABILITY ?",
            )
            .unwrap();
        let r = p.with_probability(0.9).run().unwrap();
        let ci = r.ci().expect("scalar CI");
        assert!((ci.confidence - 0.9).abs() < 1e-9);
    }

    #[test]
    fn run_progressive_final_snapshot_matches_run() {
        let e = engine(false);
        let p = e
            .session()
            .prepare("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT 400")
            .unwrap();
        let blocking = p.run().unwrap();
        let progressive = p.run_progressive().unwrap();
        assert_eq!(progressive.result(), &blocking, "same stream, same answer");
        let last = progressive.snapshots().last().expect("at least one snapshot");
        assert!(last.done);
        assert_eq!(last.rows, blocking.rows);
        assert_eq!(last.budget_spent, blocking.oracle_calls);
        // Budgets are non-decreasing and only the last snapshot is done.
        let snaps = progressive.snapshots();
        for pair in snaps.windows(2) {
            assert!(pair[0].budget_spent <= pair[1].budget_spent);
        }
        assert!(snaps.iter().filter(|s| s.done).count() == 1);
        // The run iterates.
        assert_eq!((&progressive).into_iter().count(), snaps.len());
    }

    #[test]
    fn ci_width_binding_stops_early() {
        let e = engine(false);
        // Same session id + statement index → same prepared RNG stream for
        // the anytime and blocking statements, so they are comparable.
        let p = e
            .session_with_id(7)
            .prepare(
                "SELECT AVG(links) FROM emails WHERE is_spam \
                 UNTIL CI WIDTH < ? MAX ORACLE LIMIT 3000",
            )
            .unwrap();
        assert!(matches!(p.run(), Err(QueryError::UnboundParameter("UNTIL CI WIDTH < ?"))));
        // A generous target stops well short of the cap and meets the
        // target; accounting reflects only what was actually charged.
        let r = p.clone().with_ci_width(5.0).run().unwrap();
        assert!(r.oracle_calls < 3000, "spent {} of 3000", r.oracle_calls);
        let ci = r.ci().expect("scalar CI");
        assert!(ci.width() < 5.0, "width {}", ci.width());
        // An unreachable target spends the full budget and matches the
        // blocking run for the same statement.
        let full = p.with_ci_width(1e-12).run().unwrap();
        let blocking = e
            .session_with_id(7)
            .prepare("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT 3000")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(full, blocking, "no early stop → bit-identical to blocking");
    }

    #[test]
    fn prepare_surfaces_planning_errors_before_any_run() {
        let e = engine(false);
        assert!(matches!(
            e.session().prepare("SELECT AVG(x) FROM nope WHERE p ORACLE LIMIT 10"),
            Err(QueryError::UnknownTable(t)) if t == "nope"
        ));
        assert!(matches!(
            e.session().prepare("SELECT AVG(x) FROM emails WHERE mystery ORACLE LIMIT 10"),
            Err(QueryError::UnresolvedPredicate { .. })
        ));
    }

    #[test]
    fn explain_reflects_bindings() {
        let e = engine(false);
        let p = e
            .session()
            .prepare("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT ?")
            .unwrap();
        let unbound = p.explain().unwrap();
        assert!(unbound.contains("budget : ?"), "{unbound}");
        let bound = p.with_budget(500).explain().unwrap();
        assert!(bound.contains("budget : 500 oracle calls"), "{bound}");
    }

    #[test]
    fn sql_renders_the_planned_statement() {
        let e = engine(false);
        let p = e
            .session()
            .prepare("select avg(links) from emails where is_spam oracle limit ?")
            .unwrap();
        assert_eq!(
            p.sql(),
            "SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT ? \
             WITH PROBABILITY 0.95"
        );
        assert_eq!(p.query().table, "emails");
    }
}
