//! Prepared statements: parse and plan once, re-execute many times.
//!
//! The warm-cache repeat-query path from the label store is the first-class
//! API here: a dashboard prepares its statement once
//! ([`crate::Session::prepare`]), then calls [`Prepared::run`] each refresh
//! — no re-parsing, no re-planning, and (with the engine's label cache
//! warm) zero oracle calls, because every `run` replays the same sampling
//! stream and the store already holds every verdict it draws.
//!
//! Parameters deferred with `?` in the SQL (`ORACLE LIMIT ?`,
//! `WITH PROBABILITY ?`) are bound with [`Prepared::with_budget`] /
//! [`Prepared::with_probability`]; a bound value also overrides a literal,
//! so one prepared statement can sweep budgets.

use crate::ast::Query;
use crate::engine::Engine;
use crate::exec::{QueryError, QueryResult};
use crate::plan::{explain_plan, run_plan, Bindings, QueryPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A parsed-and-planned statement bound to an [`Engine`], ready to run any
/// number of times. `Send + Sync` and `Clone`: clones share nothing
/// mutable, so a pool of worker threads can each run the same statement.
///
/// Determinism: every [`Prepared::run`] restarts the statement's RNG
/// stream (derived from engine seed, session id, and preparation order),
/// so an identical re-run redraws exactly the same records — with a warm
/// label cache that costs **zero** oracle calls — and a re-run under a new
/// budget spends the oracle only on records the cache has not seen.
#[derive(Debug, Clone)]
pub struct Prepared {
    engine: Engine,
    plan: QueryPlan,
    base_seed: u64,
    budget: Option<usize>,
    probability: Option<f64>,
}

impl Prepared {
    pub(crate) fn new(engine: Engine, plan: QueryPlan, base_seed: u64) -> Self {
        Self { engine, plan, base_seed, budget: None, probability: None }
    }

    /// Binds the oracle budget (`ORACLE LIMIT ?`), or overrides a literal
    /// one.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Binds the success probability (`WITH PROBABILITY ?`), or overrides
    /// a literal one.
    pub fn with_probability(mut self, probability: f64) -> Self {
        self.probability = Some(probability);
        self
    }

    /// Executes the planned statement with the current bindings. Fails
    /// with [`QueryError::UnboundParameter`] if a `?` placeholder was
    /// never bound.
    pub fn run(&self) -> Result<QueryResult, QueryError> {
        let mut rng = StdRng::seed_from_u64(self.base_seed);
        run_plan(
            self.engine.catalog(),
            &self.plan,
            self.engine.options(),
            &self.bindings(),
            &mut rng,
        )
    }

    /// `EXPLAIN` for the prepared statement, reflecting the current
    /// bindings (an unbound placeholder budget renders as `?`). Same plan
    /// [`Prepared::run`] executes — no drift possible.
    pub fn explain(&self) -> Result<String, QueryError> {
        explain_plan(self.engine.catalog(), &self.plan, self.engine.options(), &self.bindings())
    }

    /// The parsed query this statement was planned from.
    pub fn query(&self) -> &Query {
        &self.plan.query
    }

    /// The statement rendered back to SQL (placeholders render as `?`).
    pub fn sql(&self) -> String {
        self.plan.query.to_string()
    }

    fn bindings(&self) -> Bindings {
        Bindings { oracle_limit: self.budget, probability: self.probability }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(cache: bool) -> Engine {
        let n = 4000;
        let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
        let t = abae_data::Table::builder("emails", values)
            .predicate("is_spam", labels, proxy)
            .build()
            .unwrap();
        Engine::builder().table(t).bootstrap_trials(50).label_cache(cache).seed(5).build()
    }

    #[test]
    fn prepared_is_send_sync_and_replays_exactly() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<Prepared>();
        let e = engine(false);
        let p = e
            .session()
            .prepare("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT 400")
            .unwrap();
        let a = p.run().unwrap();
        let b = p.run().unwrap();
        assert_eq!(a, b, "each run replays the same stream");
    }

    #[test]
    fn unbound_budget_is_an_error_until_bound() {
        let e = engine(false);
        let p = e
            .session()
            .prepare("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT ?")
            .unwrap();
        assert!(matches!(p.run(), Err(QueryError::UnboundParameter("ORACLE LIMIT ?"))));
        let r = p.with_budget(400).run().unwrap();
        assert!(r.oracle_calls > 0 && r.oracle_calls <= 400);
    }

    #[test]
    fn probability_binding_reaches_the_ci() {
        let e = engine(false);
        let p = e
            .session()
            .prepare(
                "SELECT AVG(links) FROM emails WHERE is_spam \
                 ORACLE LIMIT 400 WITH PROBABILITY ?",
            )
            .unwrap();
        let r = p.with_probability(0.9).run().unwrap();
        let ci = r.ci().expect("scalar CI");
        assert!((ci.confidence - 0.9).abs() < 1e-9);
    }

    #[test]
    fn prepare_surfaces_planning_errors_before_any_run() {
        let e = engine(false);
        assert!(matches!(
            e.session().prepare("SELECT AVG(x) FROM nope WHERE p ORACLE LIMIT 10"),
            Err(QueryError::UnknownTable(t)) if t == "nope"
        ));
        assert!(matches!(
            e.session().prepare("SELECT AVG(x) FROM emails WHERE mystery ORACLE LIMIT 10"),
            Err(QueryError::UnresolvedPredicate { .. })
        ));
    }

    #[test]
    fn explain_reflects_bindings() {
        let e = engine(false);
        let p = e
            .session()
            .prepare("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT ?")
            .unwrap();
        let unbound = p.explain().unwrap();
        assert!(unbound.contains("budget : ?"), "{unbound}");
        let bound = p.with_budget(500).explain().unwrap();
        assert!(bound.contains("budget : 500 oracle calls"), "{bound}");
    }

    #[test]
    fn sql_renders_the_planned_statement() {
        let e = engine(false);
        let p = e
            .session()
            .prepare("select avg(links) from emails where is_spam oracle limit ?")
            .unwrap();
        assert_eq!(
            p.sql(),
            "SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT ? \
             WITH PROBABILITY 0.95"
        );
        assert_eq!(p.query().table, "emails");
    }
}
