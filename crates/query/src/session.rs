//! Per-client sessions over a shared [`Engine`].
//!
//! A [`Session`] is one client's connection: it holds an engine handle
//! (an `Arc` clone) and a private, deterministic RNG stream derived from
//! the engine seed and the session id. Sessions are `Send` — hand each
//! client thread its own — and because the stream depends only on the
//! session's own statement sequence, N sessions produce bit-identical
//! per-session results whether they run serially or interleaved on M
//! threads (`tests/engine_sessions.rs` pins exactly this).

use crate::ast::Statement;
use crate::ddl::{run_create_proxy, run_show_proxies};
use crate::engine::Engine;
use crate::exec::{QueryError, QueryResult, QuerySnapshot, StatementOutcome};
use crate::parser::{parse_query, parse_statement};
use crate::plan::{explain_plan, plan_query, run_plan, run_plan_progressive, Bindings, ExecCtx};
use crate::prepared::Prepared;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One client's handle on a shared [`Engine`]: executes statements with a
/// deterministic per-session RNG stream and prepares statements for
/// re-execution. Open one with [`Engine::session`].
#[derive(Debug)]
pub struct Session {
    engine: Engine,
    id: u64,
    rng: StdRng,
    /// Statements prepared so far; each gets its own derived RNG stream.
    statements: u64,
}

impl Session {
    pub(crate) fn new(engine: Engine, id: u64) -> Self {
        let rng = StdRng::seed_from_u64(engine.session_seed(id));
        Self { engine, id, rng, statements: 0 }
    }

    /// This session's id (unique per [`Engine::session`] call; fixed by
    /// the caller for [`Engine::session_with_id`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The engine this session serves queries against.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Parses, plans, and executes one `SELECT`, advancing the session's
    /// RNG stream. Statements with `?` placeholders cannot run here —
    /// [`Session::prepare`] them and bind the parameter instead
    /// ([`QueryError::UnboundParameter`] otherwise). For the
    /// proxy-management statements (`CREATE PROXY`, `SHOW PROXIES`),
    /// which produce no rows, use [`Session::run`].
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, QueryError> {
        let query = parse_query(sql)?;
        self.run_select(&query)
    }

    /// The one `SELECT` execution path behind both [`Session::execute`]
    /// and [`Session::run`]: plan against the engine's catalog, run with
    /// the session's stream.
    fn run_select(&mut self, query: &crate::ast::Query) -> Result<QueryResult, QueryError> {
        let plan = plan_query(self.engine.catalog(), query)?;
        run_plan(
            self.engine.catalog(),
            &plan,
            self.engine.options(),
            &Bindings::default(),
            &mut self.rng,
            &ExecCtx { session: self.id, batcher: Some(self.engine.batcher()) },
        )
    }

    /// Like [`Session::execute`], but surfaces progress: `on_snapshot`
    /// fires after every labeling chunk with a statistically valid
    /// intermediate answer ([`QuerySnapshot`]) for the same query.
    ///
    /// The session's RNG stream advances exactly as [`Session::execute`]
    /// would, and when no `UNTIL CI WIDTH` target stops the run early the
    /// returned result is bit-identical to what `execute` returns — for
    /// any thread count or chunk size.
    pub fn execute_progressive(
        &mut self,
        sql: &str,
        mut on_snapshot: impl FnMut(&QuerySnapshot),
    ) -> Result<QueryResult, QueryError> {
        let query = parse_query(sql)?;
        let plan = plan_query(self.engine.catalog(), &query)?;
        run_plan_progressive(
            self.engine.catalog(),
            &plan,
            self.engine.options(),
            &Bindings::default(),
            &mut self.rng,
            &ExecCtx { session: self.id, batcher: Some(self.engine.batcher()) },
            &mut on_snapshot,
        )
    }

    /// Parses and executes one statement of any kind — `SELECT`,
    /// `CREATE PROXY`, or `SHOW PROXIES` — advancing the session's RNG
    /// stream for the statements that sample (`SELECT` and the training
    /// draw of `CREATE PROXY`; `SHOW PROXIES` is a pure read).
    ///
    /// Determinism: the stream advances per sampling statement exactly as
    /// [`Session::execute`] would, so a train-then-query sequence replays
    /// bit-identically on a fresh session with the same id.
    pub fn run(&mut self, sql: &str) -> Result<StatementOutcome, QueryError> {
        match parse_statement(sql)? {
            Statement::Select(query) => {
                self.run_select(&query).map(StatementOutcome::Rows)
            }
            Statement::CreateProxy(stmt) => run_create_proxy(
                self.engine.catalog(),
                &stmt,
                self.engine.options(),
                &mut self.rng,
                &ExecCtx { session: self.id, batcher: Some(self.engine.batcher()) },
            )
            .map(StatementOutcome::ProxyCreated),
            Statement::ShowProxies(table) => {
                run_show_proxies(self.engine.catalog(), table.as_deref())
                    .map(StatementOutcome::Proxies)
            }
        }
    }

    /// `EXPLAIN`: renders the physical plan for `sql` without spending
    /// oracle calls or advancing the session's RNG stream. The rendering
    /// consumes the same plan [`Session::execute`] runs, so it cannot
    /// drift from execution.
    pub fn explain(&self, sql: &str) -> Result<String, QueryError> {
        let query = parse_query(sql)?;
        let plan = plan_query(self.engine.catalog(), &query)?;
        explain_plan(
            self.engine.catalog(),
            &plan,
            self.engine.options(),
            &Bindings::default(),
            &ExecCtx { session: self.id, batcher: Some(self.engine.batcher()) },
        )
    }

    /// Parses and plans `sql` **once**, returning a [`Prepared`] statement
    /// that re-executes without re-parsing or re-planning. Parameter
    /// placeholders (`ORACLE LIMIT ?`, `WITH PROBABILITY ?`) are bound
    /// through [`Prepared::with_budget`] / [`Prepared::with_probability`].
    ///
    /// Each prepared statement owns an RNG stream derived from (engine
    /// seed, session id, preparation order), independent of the session's
    /// own execute stream.
    pub fn prepare(&mut self, sql: &str) -> Result<Prepared, QueryError> {
        let query = parse_query(sql)?;
        let plan = plan_query(self.engine.catalog(), &query)?;
        let statement = self.statements;
        self.statements += 1;
        let base_seed = self.engine.prepared_seed(self.id, statement);
        Ok(Prepared::new(self.engine.clone(), plan, base_seed, self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::Table;

    fn engine(seed: u64) -> Engine {
        let n = 4000;
        let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
        let t = Table::builder("emails", values)
            .predicate("is_spam", labels, proxy)
            .build()
            .unwrap();
        Engine::builder().table(t).bootstrap_trials(50).seed(seed).build()
    }

    const SQL: &str = "SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT 400";

    #[test]
    fn sessions_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
    }

    #[test]
    fn same_session_id_replays_the_same_stream() {
        let e = engine(9);
        let a = e.session_with_id(3).execute(SQL).unwrap();
        let b = e.session_with_id(3).execute(SQL).unwrap();
        assert_eq!(a, b, "identical (seed, id, statement sequence) must reproduce exactly");
        let c = e.session_with_id(4).execute(SQL).unwrap();
        assert_ne!(a.estimate(), c.estimate(), "different session ids should differ");
    }

    #[test]
    fn execute_advances_the_stream_within_a_session() {
        let e = engine(11);
        let mut s = e.session();
        let first = s.execute(SQL).unwrap();
        let second = s.execute(SQL).unwrap();
        // Different draws (stream semantics), both valid answers.
        assert_ne!(first.estimate(), second.estimate());
        // And the whole sequence replays on a fresh session with the id.
        let mut replay = e.session_with_id(s.id());
        assert_eq!(replay.execute(SQL).unwrap(), first);
        assert_eq!(replay.execute(SQL).unwrap(), second);
    }

    #[test]
    fn execute_progressive_matches_execute_and_streams_snapshots() {
        let e = engine(21);
        let blocking = e.session_with_id(1).execute(SQL).unwrap();
        let mut snaps = Vec::new();
        let progressive = e
            .session_with_id(1)
            .execute_progressive(SQL, |s| snaps.push(s.clone()))
            .unwrap();
        assert_eq!(progressive, blocking, "same session stream, same answer");
        let last = snaps.last().expect("at least one snapshot");
        assert!(last.done);
        assert_eq!(last.rows, blocking.rows);
        assert_eq!(last.budget_spent, blocking.oracle_calls);
    }

    #[test]
    fn until_ci_width_stops_early_through_execute() {
        let e = engine(23);
        let r = e
            .session()
            .execute(
                "SELECT AVG(links) FROM emails WHERE is_spam \
                 UNTIL CI WIDTH < 5 MAX ORACLE LIMIT 3000",
            )
            .unwrap();
        assert!(r.oracle_calls < 3000, "spent {} of 3000", r.oracle_calls);
        let ci = r.ci().expect("scalar CI");
        assert!(ci.width() < 5.0, "width {}", ci.width());
    }

    #[test]
    fn placeholders_must_be_prepared() {
        let e = engine(13);
        let mut s = e.session();
        let err = s
            .execute("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT ?")
            .unwrap_err();
        assert!(matches!(err, QueryError::UnboundParameter("ORACLE LIMIT ?")), "{err}");
    }

    #[test]
    fn explain_does_not_advance_the_stream() {
        let e = engine(17);
        let mut s = e.session();
        let _ = s.explain(SQL).unwrap();
        let with_explain = s.execute(SQL).unwrap();
        let without = e.session_with_id(s.id()).execute(SQL).unwrap();
        assert_eq!(with_explain, without, "explain must be side-effect-free");
    }
}
