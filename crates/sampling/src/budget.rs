//! Sample-budget arithmetic.
//!
//! ABae splits its oracle budget `N` into a pilot stage (`N1` per stratum)
//! and an allocation stage (`N2` split across strata proportionally to the
//! estimated optimal allocation `T̂_k`). The paper floors the fractional
//! allocation (`⌊N2·T̂_k⌋`, §4.4.2 "Fractional allocations") and shows the
//! rate is unaffected; we additionally provide largest-remainder rounding,
//! which spends the leftover draws, as an ablation
//! (`abae-bench --bin ablation_rounding`).

/// How the Stage-1/Stage-2 budget is divided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSplit {
    /// Pilot draws per stratum (`N1` in the paper).
    pub n1_per_stratum: usize,
    /// Total Stage-2 draws (`N2`).
    pub n2_total: usize,
}

/// Splits a total oracle budget `n` between stages for `k` strata with
/// Stage-1 fraction `c` (the paper's `C`, recommended 0.3–0.5).
///
/// `N1 = ⌊c·n/k⌋` per stratum; everything not spent in Stage 1 goes to
/// Stage 2 (`N2 = n − k·N1`). Degenerate inputs (zero strata or zero
/// budget) yield a zero split.
pub fn stage_split(n: usize, c: f64, k: usize) -> StageSplit {
    if k == 0 || n == 0 {
        return StageSplit { n1_per_stratum: 0, n2_total: 0 };
    }
    let c = c.clamp(0.0, 1.0);
    let n1 = ((c * n as f64) / k as f64).floor() as usize;
    let n2 = n - (n1 * k).min(n);
    StageSplit { n1_per_stratum: n1, n2_total: n2 }
}

/// The paper's allocation rounding: `⌊n·w_k⌋` per stratum, leftovers
/// discarded. Weights are normalized internally; non-finite or negative
/// weights are treated as zero. If every weight is zero the allocation is
/// uniform (`n/k` each), matching ABae's fallback when all
/// `√p̂_k·σ̂_k = 0`.
pub fn floor_allocation(weights: &[f64], n: usize) -> Vec<usize> {
    allocate(weights, n, false)
}

/// Largest-remainder (Hamilton) rounding: floors first, then hands the
/// leftover draws to the strata with the largest fractional parts, so the
/// allocation sums to exactly `n`.
pub fn largest_remainder_allocation(weights: &[f64], n: usize) -> Vec<usize> {
    allocate(weights, n, true)
}

/// Re-splits a labeling workload of `total` draws into snapshot chunks of
/// at most `chunk` draws each (the last chunk takes the remainder). A
/// `chunk` of zero is clamped to 1. The chunk sizes always sum to `total`,
/// so chunked labeling spends exactly the budget a one-shot pass would —
/// snapshot boundaries never change how much is drawn, only when progress
/// is reported.
pub fn chunk_sizes(total: usize, chunk: usize) -> Vec<usize> {
    let chunk = chunk.max(1);
    let mut out = Vec::with_capacity(total.div_ceil(chunk));
    let mut remaining = total;
    while remaining > 0 {
        let take = chunk.min(remaining);
        out.push(take);
        remaining -= take;
    }
    out
}

fn allocate(weights: &[f64], n: usize, redistribute: bool) -> Vec<usize> {
    if weights.is_empty() {
        return Vec::new();
    }
    let clean: Vec<f64> =
        weights.iter().map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 }).collect();
    let total: f64 = clean.iter().sum();
    let shares: Vec<f64> = if total > 0.0 {
        clean.iter().map(|w| w / total * n as f64).collect()
    } else {
        // Uniform fallback.
        vec![n as f64 / weights.len() as f64; weights.len()]
    };
    let mut alloc: Vec<usize> = shares.iter().map(|s| s.floor() as usize).collect();
    if redistribute {
        let assigned: usize = alloc.iter().sum();
        let mut leftover = n.saturating_sub(assigned);
        if leftover > 0 {
            let mut order: Vec<usize> = (0..shares.len()).collect();
            order.sort_by(|&a, &b| {
                let fa = shares[a] - shares[a].floor();
                let fb = shares[b] - shares[b].floor();
                fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
            });
            for &i in order.iter().cycle() {
                if leftover == 0 {
                    break;
                }
                alloc[i] += 1;
                leftover -= 1;
            }
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stage_split_matches_paper_recommendation() {
        // N = 10_000, C = 0.5, K = 5 → N1 = 1000 per stratum, N2 = 5000.
        let s = stage_split(10_000, 0.5, 5);
        assert_eq!(s.n1_per_stratum, 1000);
        assert_eq!(s.n2_total, 5000);
    }

    #[test]
    fn stage_split_degenerate() {
        assert_eq!(stage_split(0, 0.5, 5), StageSplit { n1_per_stratum: 0, n2_total: 0 });
        assert_eq!(stage_split(100, 0.5, 0), StageSplit { n1_per_stratum: 0, n2_total: 0 });
    }

    #[test]
    fn stage_split_never_overspends() {
        for n in [1usize, 7, 100, 9999] {
            for k in [1usize, 3, 5, 10] {
                for c in [0.0, 0.1, 0.3, 0.5, 0.9, 1.0] {
                    let s = stage_split(n, c, k);
                    assert!(s.n1_per_stratum * k + s.n2_total <= n);
                }
            }
        }
    }

    #[test]
    fn floor_allocation_floors() {
        // Weights 1:1:2 with n = 10 → exact shares 2.5, 2.5, 5.
        let a = floor_allocation(&[1.0, 1.0, 2.0], 10);
        assert_eq!(a, vec![2, 2, 5]);
        assert_eq!(a.iter().sum::<usize>(), 9); // one draw discarded
    }

    #[test]
    fn largest_remainder_spends_everything() {
        let a = largest_remainder_allocation(&[1.0, 1.0, 2.0], 10);
        assert_eq!(a.iter().sum::<usize>(), 10);
        // The leftover goes to one of the 0.5-fraction strata.
        assert_eq!(a[2], 5);
        assert_eq!(a[0] + a[1], 5);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let a = floor_allocation(&[0.0, 0.0, 0.0, 0.0], 8);
        assert_eq!(a, vec![2, 2, 2, 2]);
        let a = largest_remainder_allocation(&[0.0, 0.0, 0.0], 8);
        assert_eq!(a.iter().sum::<usize>(), 8);
    }

    #[test]
    fn non_finite_and_negative_weights_ignored() {
        let a = largest_remainder_allocation(&[f64::NAN, -3.0, 1.0], 6);
        assert_eq!(a, vec![0, 0, 6]);
    }

    #[test]
    fn empty_weights_empty_allocation() {
        assert!(floor_allocation(&[], 10).is_empty());
    }

    #[test]
    fn single_stratum_takes_all() {
        assert_eq!(floor_allocation(&[3.7], 9), vec![9]);
    }

    #[test]
    fn chunk_sizes_cover_the_workload_exactly() {
        assert_eq!(chunk_sizes(10, 4), vec![4, 4, 2]);
        assert_eq!(chunk_sizes(8, 4), vec![4, 4]);
        assert_eq!(chunk_sizes(3, 100), vec![3]);
        assert_eq!(chunk_sizes(0, 4), Vec::<usize>::new());
        // Zero chunk is clamped, not an infinite loop.
        assert_eq!(chunk_sizes(3, 0), vec![1, 1, 1]);
    }

    proptest! {
        #[test]
        fn floor_never_exceeds_budget(
            weights in proptest::collection::vec(0.0f64..100.0, 1..20),
            n in 0usize..10_000,
        ) {
            let a = floor_allocation(&weights, n);
            prop_assert!(a.iter().sum::<usize>() <= n);
        }

        #[test]
        fn largest_remainder_sums_exactly(
            weights in proptest::collection::vec(0.0f64..100.0, 1..20),
            n in 0usize..10_000,
        ) {
            let a = largest_remainder_allocation(&weights, n);
            prop_assert_eq!(a.iter().sum::<usize>(), n);
        }

        #[test]
        fn chunk_sizes_always_sum_to_total(
            total in 0usize..10_000,
            chunk in 0usize..600,
        ) {
            let sizes = chunk_sizes(total, chunk);
            prop_assert_eq!(sizes.iter().sum::<usize>(), total);
            prop_assert!(sizes.iter().all(|&s| s > 0 && s <= chunk.max(1)));
        }

        #[test]
        fn allocation_is_monotone_in_weight(
            base in proptest::collection::vec(0.1f64..10.0, 2..10),
            n in 100usize..5000,
        ) {
            // Doubling one stratum's weight must not decrease its allocation.
            let a = floor_allocation(&base, n);
            let mut boosted = base.clone();
            boosted[0] *= 2.0;
            let b = floor_allocation(&boosted, n);
            prop_assert!(b[0] >= a[0]);
        }
    }
}
