//! Sampling substrate for the ABae reproduction.
//!
//! Algorithm 1 of the paper draws records *without replacement* from each
//! stratum in two stages: a pilot stage and an allocation stage that must
//! exclude the pilot's draws. Algorithm 2 resamples *with replacement* for
//! the bootstrap. This crate provides those primitives:
//!
//! * [`pool::IndexPool`] — incremental without-replacement draws from
//!   `0..n`, the workhorse behind two-stage stratified sampling.
//! * [`wor`] — one-shot without-replacement sampling (partial Fisher–Yates
//!   and Floyd's algorithm, chosen by sample fraction).
//! * [`wr`] — with-replacement sampling.
//! * [`reservoir`] — Algorithm R / Algorithm L reservoir sampling for
//!   streams of unknown length (used by the CSV ingestion path).
//! * [`budget`] — sample-budget arithmetic: the paper's floor rounding
//!   `⌊N2·T̂_k⌋`, the largest-remainder alternative (ablation), and the
//!   Stage-1/Stage-2 split `N1 = ⌊C·N/K⌋`.
//! * [`permute`] — Fisher–Yates shuffles.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod permute;
pub mod pool;
pub mod reservoir;
pub mod weighted;
pub mod wor;
pub mod wr;

pub use budget::{floor_allocation, largest_remainder_allocation, stage_split, StageSplit};
pub use pool::IndexPool;
pub use reservoir::reservoir_sample;
pub use weighted::WeightedSampler;
pub use wor::sample_without_replacement;
pub use wr::sample_with_replacement;
