//! Fisher–Yates shuffles.
//!
//! Used by the dataset emulators to break any correlation between record id
//! and latent difficulty, and by the WOR samplers for order exchangeability.

use rand::Rng;

/// Shuffles a slice in place with the Fisher–Yates algorithm.
pub fn shuffle<T, R: Rng + ?Sized>(data: &mut [T], rng: &mut R) {
    for i in (1..data.len()).rev() {
        let j = rng.gen_range(0..=i);
        data.swap(i, j);
    }
}

/// Returns a uniformly random permutation of `0..n`.
pub fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    shuffle(&mut perm, rng);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shuffle_preserves_elements() {
        let mut data: Vec<u32> = (0..100).collect();
        let mut r = StdRng::seed_from_u64(1);
        shuffle(&mut data, &mut r);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn permutation_is_bijection() {
        let mut r = StdRng::seed_from_u64(2);
        let p = random_permutation(50, &mut r);
        let mut seen = [false; 50];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_and_singleton_are_fine() {
        let mut r = StdRng::seed_from_u64(3);
        let mut empty: Vec<u8> = vec![];
        shuffle(&mut empty, &mut r);
        let mut one = vec![42];
        shuffle(&mut one, &mut r);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn positions_are_uniform() {
        // Element 0 should land in each slot with equal probability.
        let n = 10;
        let trials = 50_000;
        let mut counts = vec![0u32; n];
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..trials {
            let p = random_permutation(n, &mut r);
            let pos = p.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() / expect < 0.06);
        }
    }
}
