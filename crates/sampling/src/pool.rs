//! Incremental without-replacement draws from an index range.
//!
//! ABae samples a stratum twice: `N1` pilot draws in Stage 1, then
//! `⌊N2·T̂_k⌋` additional draws in Stage 2 that must not repeat Stage 1's
//! records (Algorithm 1 line 16: `R(2)_k ← R(1)_k + SampleFn(...)`). An
//! [`IndexPool`] keeps a permutation buffer over `0..n` with a drawn prefix;
//! each `draw` extends the prefix with a continued partial Fisher–Yates
//! shuffle, so draws across calls are jointly a uniform without-replacement
//! sample.

use rand::Rng;

/// A pool of indices `0..n` supporting repeated without-replacement draws.
#[derive(Debug, Clone)]
pub struct IndexPool {
    /// Permutation buffer; `indices[..drawn]` have been handed out.
    indices: Vec<usize>,
    drawn: usize,
}

impl IndexPool {
    /// Creates a pool over `0..n`.
    pub fn new(n: usize) -> Self {
        Self { indices: (0..n).collect(), drawn: 0 }
    }

    /// Total pool size `n`.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when the pool is empty (`n == 0`).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of indices drawn so far.
    pub fn drawn(&self) -> usize {
        self.drawn
    }

    /// Number of indices still available.
    pub fn remaining(&self) -> usize {
        self.indices.len() - self.drawn
    }

    /// Draws up to `k` indices uniformly without replacement from the
    /// remaining pool, returning the drawn slice. Fewer than `k` are
    /// returned when the pool runs dry (matching the paper's behaviour when
    /// a stratum is exhausted).
    pub fn draw<R: Rng + ?Sized>(&mut self, k: usize, rng: &mut R) -> &[usize] {
        let take = k.min(self.remaining());
        let start = self.drawn;
        for i in 0..take {
            let pos = self.drawn + i;
            let j = rng.gen_range(pos..self.indices.len());
            self.indices.swap(pos, j);
        }
        self.drawn += take;
        &self.indices[start..self.drawn]
    }

    /// All indices drawn so far, in draw order.
    pub fn drawn_indices(&self) -> &[usize] {
        &self.indices[..self.drawn]
    }

    /// Resets the pool so every index is available again (draw order is not
    /// restored to identity; the next draws remain uniform).
    pub fn reset(&mut self) {
        self.drawn = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn draws_are_distinct_across_stages() {
        let mut pool = IndexPool::new(100);
        let mut r = rng(1);
        let stage1: Vec<usize> = pool.draw(30, &mut r).to_vec();
        let stage2: Vec<usize> = pool.draw(50, &mut r).to_vec();
        let all: HashSet<usize> = stage1.iter().chain(stage2.iter()).copied().collect();
        assert_eq!(all.len(), 80, "duplicate draw across stages");
        assert_eq!(pool.drawn(), 80);
        assert_eq!(pool.remaining(), 20);
    }

    #[test]
    fn over_draw_is_clamped_to_pool_size() {
        let mut pool = IndexPool::new(10);
        let mut r = rng(2);
        let got = pool.draw(25, &mut r).to_vec();
        assert_eq!(got.len(), 10);
        let unique: HashSet<usize> = got.iter().copied().collect();
        assert_eq!(unique.len(), 10);
        assert!(pool.draw(5, &mut r).is_empty());
    }

    #[test]
    fn empty_pool_yields_nothing() {
        let mut pool = IndexPool::new(0);
        let mut r = rng(3);
        assert!(pool.is_empty());
        assert!(pool.draw(4, &mut r).is_empty());
    }

    #[test]
    fn drawn_indices_accumulate_in_order() {
        let mut pool = IndexPool::new(20);
        let mut r = rng(4);
        let a = pool.draw(3, &mut r).to_vec();
        let b = pool.draw(2, &mut r).to_vec();
        let all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(pool.drawn_indices(), all.as_slice());
    }

    #[test]
    fn reset_makes_everything_available() {
        let mut pool = IndexPool::new(15);
        let mut r = rng(5);
        pool.draw(10, &mut r);
        pool.reset();
        assert_eq!(pool.remaining(), 15);
        let got = pool.draw(15, &mut r).to_vec();
        let unique: HashSet<usize> = got.iter().copied().collect();
        assert_eq!(unique.len(), 15);
    }

    #[test]
    fn marginal_inclusion_is_uniform() {
        // Each index should appear in a k-of-n draw with probability k/n.
        let n = 20;
        let k = 5;
        let trials = 40_000;
        let mut counts = vec![0u32; n];
        let mut r = rng(6);
        for _ in 0..trials {
            let mut pool = IndexPool::new(n);
            for &i in pool.draw(k, &mut r) {
                counts[i] += 1;
            }
        }
        let expect = trials as f64 * k as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "index {i} inclusion off by {dev}");
        }
    }

    #[test]
    fn two_stage_draw_is_jointly_uniform() {
        // Drawing 3 then 2 must give every index the same marginal inclusion
        // probability as drawing 5 at once.
        let n = 12;
        let trials = 60_000;
        let mut counts = vec![0u32; n];
        let mut r = rng(7);
        for _ in 0..trials {
            let mut pool = IndexPool::new(n);
            for &i in pool.draw(3, &mut r) {
                counts[i] += 1;
            }
            for &i in pool.draw(2, &mut r) {
                counts[i] += 1;
            }
        }
        let expect = trials as f64 * 5.0 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "index {i} inclusion off by {dev}");
        }
    }

    proptest! {
        #[test]
        fn no_duplicates_for_any_draw_sequence(
            n in 0usize..200,
            draws in proptest::collection::vec(0usize..50, 0..8),
            seed in 0u64..1000,
        ) {
            let mut pool = IndexPool::new(n);
            let mut r = rng(seed);
            let mut seen = HashSet::new();
            for k in draws {
                for &i in pool.draw(k, &mut r) {
                    prop_assert!(i < n);
                    prop_assert!(seen.insert(i), "duplicate index {i}");
                }
            }
            prop_assert_eq!(seen.len(), pool.drawn());
        }
    }
}
