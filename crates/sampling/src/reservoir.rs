//! Reservoir sampling for streams of unknown length.
//!
//! The CSV ingestion path in `abae-data` can down-sample very large inputs
//! without materializing them; Algorithm R is the simple exact method, and
//! Algorithm L (Li, 1994) skips ahead geometrically so the expected number
//! of RNG calls is O(k·(1 + log(n/k))) instead of O(n).

use rand::Rng;

/// Uniformly samples `k` items from an iterator of unknown length
/// (Algorithm R). Returns fewer than `k` items when the stream is shorter.
pub fn reservoir_sample<T, I, R>(iter: I, k: usize, rng: &mut R) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng + ?Sized,
{
    if k == 0 {
        return Vec::new();
    }
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in iter.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

/// Uniformly samples `k` items with Algorithm L's geometric skipping.
///
/// Statistically equivalent to [`reservoir_sample`] but makes far fewer RNG
/// calls on long streams.
pub fn reservoir_sample_skip<T, I, R>(iter: I, k: usize, rng: &mut R) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng + ?Sized,
{
    if k == 0 {
        return Vec::new();
    }
    let mut it = iter.into_iter();
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for _ in 0..k {
        match it.next() {
            Some(item) => reservoir.push(item),
            None => return reservoir,
        }
    }
    // w tracks the k-th largest of the uniform keys implicitly.
    let mut w: f64 = ((rng.gen::<f64>().max(f64::MIN_POSITIVE)).ln() / k as f64).exp();
    loop {
        let skip =
            (rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / (1.0 - w).ln()).floor() as usize;
        match it.nth(skip) {
            Some(item) => {
                let slot = rng.gen_range(0..k);
                reservoir[slot] = item;
                w *= ((rng.gen::<f64>().max(f64::MIN_POSITIVE)).ln() / k as f64).exp();
            }
            None => return reservoir,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn short_stream_returns_everything() {
        let mut r = StdRng::seed_from_u64(1);
        let s = reservoir_sample(0..5, 10, &mut r);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
        let s = reservoir_sample_skip(0..5, 10, &mut r);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_k_is_empty() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(reservoir_sample(0..100, 0, &mut r).is_empty());
        assert!(reservoir_sample_skip(0..100, 0, &mut r).is_empty());
    }

    #[test]
    fn exact_k_items_from_long_stream() {
        let mut r = StdRng::seed_from_u64(3);
        let s = reservoir_sample(0..10_000, 32, &mut r);
        assert_eq!(s.len(), 32);
        let s = reservoir_sample_skip(0..10_000, 32, &mut r);
        assert_eq!(s.len(), 32);
    }

    fn check_uniformity(skip: bool) {
        let n = 30usize;
        let k = 6;
        let trials = 40_000;
        let mut counts = vec![0u32; n];
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..trials {
            let s = if skip {
                reservoir_sample_skip(0..n, k, &mut r)
            } else {
                reservoir_sample(0..n, k, &mut r)
            };
            for i in s {
                counts[i] += 1;
            }
        }
        let expect = trials as f64 * k as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.06, "item {i} inclusion deviates by {dev} (skip={skip})");
        }
    }

    #[test]
    fn algorithm_r_is_uniform() {
        check_uniformity(false);
    }

    #[test]
    fn algorithm_l_is_uniform() {
        check_uniformity(true);
    }
}
