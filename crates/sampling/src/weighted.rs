//! Weighted sampling with replacement.
//!
//! Importance sampling draws records proportional to a weight (for ABae's
//! setting: the proxy score, mixed with a uniform floor so no record has
//! zero probability). [`WeightedSampler`] preprocesses cumulative weights
//! once and draws in O(log n) by binary search; the draw probabilities are
//! exposed so estimators can reweight.

use rand::Rng;

/// A sampler over `0..n` with fixed, non-uniform draw probabilities.
#[derive(Debug, Clone)]
pub struct WeightedSampler {
    cumulative: Vec<f64>,
    prob: Vec<f64>,
}

/// Errors from sampler construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightError {
    /// No weights supplied.
    Empty,
    /// A weight was negative or non-finite.
    Invalid {
        /// Index of the offending weight.
        index: usize,
    },
    /// All weights were zero.
    ZeroTotal,
}

impl std::fmt::Display for WeightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightError::Empty => write!(f, "no weights supplied"),
            WeightError::Invalid { index } => {
                write!(f, "weight at index {index} is negative or non-finite")
            }
            WeightError::ZeroTotal => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightError {}

impl WeightedSampler {
    /// Builds the sampler from non-negative weights (not necessarily
    /// normalized).
    pub fn new(weights: &[f64]) -> Result<Self, WeightError> {
        if weights.is_empty() {
            return Err(WeightError::Empty);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(WeightError::Invalid { index: i });
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(WeightError::ZeroTotal);
        }
        let prob = weights.iter().map(|&w| w / total).collect();
        Ok(Self { cumulative, prob })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when there are no items (unreachable through `new`).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw probability of item `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.prob[i]
    }

    /// Draws one index with probability proportional to its weight.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let u = rng.gen::<f64>() * total;
        // First index whose cumulative weight exceeds u.
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("finite")) {
            Ok(i) => (i + 1).min(self.prob.len() - 1),
            Err(i) => i.min(self.prob.len() - 1),
        }
    }

    /// Draws `k` indices with replacement.
    pub fn draw_many<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<usize> {
        (0..k).map(|_| self.draw(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_weights() {
        assert!(matches!(WeightedSampler::new(&[]), Err(WeightError::Empty)));
        assert!(matches!(
            WeightedSampler::new(&[1.0, -0.5]),
            Err(WeightError::Invalid { index: 1 })
        ));
        assert!(matches!(
            WeightedSampler::new(&[0.0, f64::NAN]),
            Err(WeightError::Invalid { index: 1 })
        ));
        assert!(matches!(WeightedSampler::new(&[0.0, 0.0]), Err(WeightError::ZeroTotal)));
    }

    #[test]
    fn frequencies_match_weights() {
        let s = WeightedSampler::new(&[1.0, 3.0, 6.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        let n = 200_000;
        for i in s.draw_many(n, &mut rng) {
            counts[i] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let got = c as f64 / n as f64;
            let want = s.probability(i);
            assert!((got - want).abs() < 0.01, "item {i}: {got} vs {want}");
        }
    }

    #[test]
    fn zero_weight_items_are_never_drawn() {
        let s = WeightedSampler::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for i in s.draw_many(10_000, &mut rng) {
            assert_eq!(i, 1);
        }
        assert_eq!(s.probability(0), 0.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let s = WeightedSampler::new(&[0.2, 0.5, 0.1, 0.7]).unwrap();
        let total: f64 = (0..s.len()).map(|i| s.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_item_always_drawn() {
        let s = WeightedSampler::new(&[42.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(s.draw(&mut rng), 0);
    }
}
