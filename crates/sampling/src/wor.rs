//! One-shot uniform sampling without replacement from `0..n`.
//!
//! Two strategies, picked by sample fraction:
//! * **Floyd's algorithm** for sparse draws (`k ≪ n`): O(k) time and memory,
//!   no O(n) buffer.
//! * **Partial Fisher–Yates** when the draw is a large fraction of the pool:
//!   O(n) buffer but no hash-set churn.
//!
//! The uniform-sampling baseline in the paper's evaluation draws its entire
//! budget this way; ABae's per-stratum two-stage draws use
//! [`crate::pool::IndexPool`] instead.

use rand::Rng;
// abae-lint: allow(hash_iter) -- imported for Floyd's rejection set below, which is membership-only
use std::collections::HashSet;

/// Fraction of the pool above which we switch from Floyd's algorithm to a
/// partial Fisher–Yates shuffle.
const FISHER_YATES_THRESHOLD: f64 = 0.25;

/// Draws `min(k, n)` distinct indices uniformly at random from `0..n`.
///
/// The returned order is itself uniformly random (both strategies produce
/// exchangeable draw orders), so callers may treat prefixes as smaller
/// uniform samples.
pub fn sample_without_replacement<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    if (k as f64) < FISHER_YATES_THRESHOLD * n as f64 {
        floyd_sample(n, k, rng)
    } else {
        partial_fisher_yates(n, k, rng)
    }
}

/// Floyd's algorithm: O(k) expected time, O(k) memory.
///
/// The classic formulation produces a set; to obtain a uniformly random
/// *order* we do a final Fisher–Yates shuffle of the k-element result.
fn floyd_sample<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    // abae-lint: allow(hash_iter) -- O(1) membership set in the per-draw loop; only `contains`/`insert`, the output order comes from `out`
    let mut chosen: HashSet<usize> = HashSet::with_capacity(k * 2);
    let mut out: Vec<usize> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    // Shuffle to make the order exchangeable.
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

/// Partial Fisher–Yates over a materialized `0..n` buffer.
fn partial_fisher_yates<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let mut buf: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        buf.swap(i, j);
    }
    buf.truncate(k);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn draws_are_distinct_and_in_range() {
        let mut r = rng(1);
        for &(n, k) in &[(100usize, 5usize), (100, 80), (10, 10), (1, 1)] {
            let s = sample_without_replacement(n, k, &mut r);
            assert_eq!(s.len(), k);
            let set: HashSet<usize> = s.iter().copied().collect();
            assert_eq!(set.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn oversized_k_is_clamped() {
        let mut r = rng(2);
        let s = sample_without_replacement(5, 100, &mut r);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn zero_cases() {
        let mut r = rng(3);
        assert!(sample_without_replacement(0, 10, &mut r).is_empty());
        assert!(sample_without_replacement(10, 0, &mut r).is_empty());
    }

    #[test]
    fn floyd_path_inclusion_is_uniform() {
        // k/n small → Floyd path.
        let n = 50;
        let k = 5;
        let trials = 50_000;
        let mut counts = vec![0u32; n];
        let mut r = rng(4);
        for _ in 0..trials {
            for &i in &sample_without_replacement(n, k, &mut r) {
                counts[i] += 1;
            }
        }
        let expect = trials as f64 * k as f64 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() / expect < 0.06);
        }
    }

    #[test]
    fn fisher_yates_path_inclusion_is_uniform() {
        // k/n large → Fisher–Yates path.
        let n = 20;
        let k = 15;
        let trials = 30_000;
        let mut counts = vec![0u32; n];
        let mut r = rng(5);
        for _ in 0..trials {
            for &i in &sample_without_replacement(n, k, &mut r) {
                counts[i] += 1;
            }
        }
        let expect = trials as f64 * k as f64 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() / expect < 0.03);
        }
    }

    #[test]
    fn first_element_is_uniform_over_pool() {
        // Order exchangeability: position 0 should be uniform over 0..n on
        // both code paths.
        for (n, k, seed) in [(40usize, 4usize, 6u64), (12, 9, 7)] {
            // At 40k trials the 10% band is only ~3.2σ per bin — flaky
            // across 40 bins; 160k widens it to ~6.4σ.
            let trials = 160_000;
            let mut counts = vec![0u32; n];
            let mut r = rng(seed);
            for _ in 0..trials {
                counts[sample_without_replacement(n, k, &mut r)[0]] += 1;
            }
            let expect = trials as f64 / n as f64;
            for &c in &counts {
                assert!((c as f64 - expect).abs() / expect < 0.1, "n={n} k={k}");
            }
        }
    }

    proptest! {
        #[test]
        fn always_distinct(n in 0usize..300, k in 0usize..300, seed in 0u64..500) {
            let mut r = rng(seed);
            let s = sample_without_replacement(n, k, &mut r);
            prop_assert_eq!(s.len(), k.min(n));
            let set: HashSet<usize> = s.iter().copied().collect();
            prop_assert_eq!(set.len(), s.len());
            prop_assert!(s.iter().all(|&i| i < n));
        }
    }
}
