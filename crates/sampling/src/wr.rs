//! Uniform sampling with replacement.
//!
//! Algorithm 2's bootstrap resamples each stratum's record set with
//! replacement (`SampleWithReplacement(R(2)_k, |R(2)_k|)`).

use rand::Rng;

/// Draws `k` indices uniformly at random from `0..n`, with replacement.
///
/// Returns an empty vector when `n == 0`.
pub fn sample_with_replacement<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    (0..k).map(|_| rng.gen_range(0..n)).collect()
}

/// Draws `k` items from `data` with replacement, cloning each pick.
pub fn choose_with_replacement<T: Clone, R: Rng + ?Sized>(
    data: &[T],
    k: usize,
    rng: &mut R,
) -> Vec<T> {
    if data.is_empty() {
        return Vec::new();
    }
    (0..k).map(|_| data[rng.gen_range(0..data.len())].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn length_and_range() {
        let mut r = StdRng::seed_from_u64(1);
        let s = sample_with_replacement(10, 100, &mut r);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|&i| i < 10));
    }

    #[test]
    fn empty_pool_is_empty_sample() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(sample_with_replacement(0, 5, &mut r).is_empty());
        assert!(choose_with_replacement::<u8, _>(&[], 5, &mut r).is_empty());
    }

    #[test]
    fn frequencies_are_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 8;
        let k = 160_000;
        let mut counts = vec![0u32; n];
        for i in sample_with_replacement(n, k, &mut r) {
            counts[i] += 1;
        }
        let expect = k as f64 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() / expect < 0.03);
        }
    }

    #[test]
    fn choose_clones_values() {
        let mut r = StdRng::seed_from_u64(4);
        let data = vec!["a", "b", "c"];
        let picks = choose_with_replacement(&data, 50, &mut r);
        assert_eq!(picks.len(), 50);
        assert!(picks.iter().all(|p| data.contains(p)));
    }
}
