//! A minimal in-repo Postgres-wire **client** for driving `abae-server`:
//! the integration suite proves the wire format with it, the qps bench's
//! wire mode measures serving overhead through it, and
//! `abae-server --self-check` uses it as a built-in smoke test.
//!
//! It speaks exactly the slice of the simple query protocol the server
//! emits — startup, `Query`, `RowDescription`/`DataRow`/`CommandComplete`,
//! `ErrorResponse`/`NoticeResponse` — in the text format, and collects one
//! [`QueryOutcome`] per query round (everything up to `ReadyForQuery`).
//! It is deliberately not a general-purpose driver: no extended protocol,
//! no TLS, no authentication (the server has none).

use crate::codec::{self, WireError};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Read timeout on client sockets: generous enough for release-mode
/// queries under CI load, finite so a wedged test fails instead of
/// hanging the suite.
const READ_TIMEOUT: Duration = Duration::from_secs(120);

/// One column of a result set, from `RowDescription`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Postgres type OID (see [`codec::oid`]).
    pub type_oid: u32,
}

/// An `ErrorResponse` from the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// SQLSTATE code (field `C`).
    pub sqlstate: String,
    /// Human-readable message (field `M`).
    pub message: String,
}

/// Everything one `Query` round returned, collected up to the trailing
/// `ReadyForQuery`. Multi-statement query strings accumulate all of their
/// rows here; `columns` describes the most recent result set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOutcome {
    /// Columns of the (last) `RowDescription`.
    pub columns: Vec<Column>,
    /// Data rows in arrival order; `None` is SQL NULL.
    pub rows: Vec<Vec<Option<String>>>,
    /// Command tags (`SELECT 3`, `CREATE PROXY`, …) in completion order.
    pub tags: Vec<String>,
    /// `NoticeResponse` messages (anytime-query progress, proxy training
    /// reports) in arrival order.
    pub notices: Vec<String>,
    /// The `ErrorResponse`, if the round errored. The connection is still
    /// usable afterwards — the server answers the next query.
    pub error: Option<ServerError>,
    /// `true` if the server answered `EmptyQueryResponse`.
    pub empty: bool,
}

impl QueryOutcome {
    /// Cell `(row, col)` parsed as `f64` (`None` for SQL NULL or out of
    /// range).
    pub fn f64(&self, row: usize, col: usize) -> Option<f64> {
        self.rows.get(row)?.get(col)?.as_deref()?.parse().ok()
    }

    /// Cell `(row, col)` as text (`None` for SQL NULL or out of range).
    pub fn text(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col)?.as_deref()
    }
}

/// A connected wire client. One instance = one server session; drop (or
/// [`WireClient::terminate`]) ends it.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    parameters: Vec<(String, String)>,
    backend_pid: u32,
}

impl WireClient {
    /// Connects and completes the startup handshake (no SSL probe).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::connect_opts(addr, false)
    }

    /// Connects, optionally probing SSL first the way `psql` does (the
    /// server answers `'N'` and the handshake proceeds in clear).
    pub fn connect_opts<A: ToSocketAddrs>(addr: A, probe_ssl: bool) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        stream.set_nodelay(true)?;

        if probe_ssl {
            let mut msg = 8u32.to_be_bytes().to_vec();
            msg.extend_from_slice(&codec::SSL_REQUEST.to_be_bytes());
            stream.write_all(&msg)?;
            let mut answer = [0u8; 1];
            stream.read_exact(&mut answer)?;
            if answer[0] != b'N' {
                return Err(bad_data(format!(
                    "expected 'N' to the SSL probe, got {:?}",
                    answer[0] as char
                )));
            }
        }

        // StartupMessage: protocol 3.0 + parameters + terminator, length
        // prefix (including itself) first.
        let mut body = codec::PROTOCOL_VERSION_3.to_be_bytes().to_vec();
        for (k, v) in [("user", "abae"), ("database", "abae")] {
            body.extend_from_slice(k.as_bytes());
            body.push(0);
            body.extend_from_slice(v.as_bytes());
            body.push(0);
        }
        body.push(0);
        let mut msg = ((body.len() + 4) as u32).to_be_bytes().to_vec();
        msg.extend_from_slice(&body);
        stream.write_all(&msg)?;
        stream.flush()?;

        // Greeting: AuthenticationOk, ParameterStatus*, BackendKeyData,
        // ReadyForQuery.
        let mut client =
            Self { stream, parameters: Vec::new(), backend_pid: 0 };
        loop {
            let (kind, payload) = client.read_message()?;
            match kind {
                b'R' => {
                    let code = be_u32(&payload, 0)?;
                    if code != 0 {
                        return Err(bad_data(format!(
                            "server demands authentication (code {code})"
                        )));
                    }
                }
                b'S' => {
                    let (key, next) = cstr(&payload, 0)?;
                    let (value, _) = cstr(&payload, next)?;
                    client.parameters.push((key, value));
                }
                b'K' => client.backend_pid = be_u32(&payload, 0)?,
                b'Z' => return Ok(client),
                b'E' => {
                    let err = decode_fields(&payload)?;
                    return Err(bad_data(format!(
                        "startup rejected: {} ({})",
                        err.message, err.sqlstate
                    )));
                }
                b'N' => {} // notices during startup: ignore
                other => {
                    return Err(bad_data(format!(
                        "unexpected message {:?} during startup",
                        other as char
                    )))
                }
            }
        }
    }

    /// `ParameterStatus` pairs the server sent at startup.
    pub fn parameters(&self) -> &[(String, String)] {
        &self.parameters
    }

    /// The pid slot of `BackendKeyData` — `abae-server` puts the session
    /// id there, which is how tests confirm the session mapping.
    pub fn backend_pid(&self) -> u32 {
        self.backend_pid
    }

    /// Sends one simple-protocol `Query` and collects everything up to
    /// `ReadyForQuery`.
    pub fn query(&mut self, sql: &str) -> io::Result<QueryOutcome> {
        let mut body = sql.as_bytes().to_vec();
        body.push(0);
        let mut msg = vec![b'Q'];
        msg.extend_from_slice(&((body.len() + 4) as u32).to_be_bytes());
        msg.extend_from_slice(&body);
        self.stream.write_all(&msg)?;
        self.stream.flush()?;

        let mut outcome = QueryOutcome::default();
        loop {
            let (kind, payload) = self.read_message()?;
            match kind {
                b'T' => outcome.columns = decode_row_description(&payload)?,
                b'D' => outcome.rows.push(decode_data_row(&payload)?),
                b'C' => {
                    let (tag, _) = cstr(&payload, 0)?;
                    outcome.tags.push(tag);
                }
                b'E' => outcome.error = Some(decode_fields(&payload)?),
                b'N' => outcome.notices.push(decode_fields(&payload)?.message),
                b'I' => outcome.empty = true,
                b'Z' => return Ok(outcome),
                b'S' => {} // parameter changes: irrelevant here
                other => {
                    return Err(bad_data(format!(
                        "unexpected message {:?} in query round",
                        other as char
                    )))
                }
            }
        }
    }

    /// Sends `Terminate` and closes.
    pub fn terminate(mut self) -> io::Result<()> {
        let msg = [b'X', 0, 0, 0, 4];
        self.stream.write_all(&msg)?;
        self.stream.flush()
    }

    /// Reads one framed backend message.
    fn read_message(&mut self) -> io::Result<(u8, Vec<u8>)> {
        let mut kind = [0u8; 1];
        self.stream.read_exact(&mut kind)?;
        let mut prefix = [0u8; 4];
        self.stream.read_exact(&mut prefix)?;
        let len = codec::frame_payload_len(prefix).map_err(wire)?;
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        Ok((kind[0], payload))
    }
}

/// Maps a framing error onto `io::ErrorKind::InvalidData`.
fn wire(e: WireError) -> io::Error {
    bad_data(e.to_string())
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn be_u16(buf: &[u8], pos: usize) -> io::Result<u16> {
    match buf.get(pos..pos + 2) {
        Some([a, b]) => Ok(u16::from_be_bytes([*a, *b])),
        _ => Err(bad_data("truncated u16".into())),
    }
}

fn be_u32(buf: &[u8], pos: usize) -> io::Result<u32> {
    match buf.get(pos..pos + 4) {
        Some([a, b, c, d]) => Ok(u32::from_be_bytes([*a, *b, *c, *d])),
        _ => Err(bad_data("truncated u32".into())),
    }
}

fn cstr(buf: &[u8], pos: usize) -> io::Result<(String, usize)> {
    let tail = buf.get(pos..).ok_or_else(|| bad_data("truncated string".into()))?;
    let nul = tail
        .iter()
        .position(|&b| b == 0)
        .ok_or_else(|| bad_data("unterminated string".into()))?;
    let s = std::str::from_utf8(&tail[..nul]).map_err(|_| bad_data("non-UTF-8 string".into()))?;
    Ok((s.to_string(), pos + nul + 1))
}

/// Parses `RowDescription`: count, then per field name + 18 bytes of
/// attributes (of which only the type OID matters to this client).
fn decode_row_description(payload: &[u8]) -> io::Result<Vec<Column>> {
    let nfields = be_u16(payload, 0)? as usize;
    let mut columns = Vec::with_capacity(nfields);
    let mut pos = 2;
    for _ in 0..nfields {
        let (name, next) = cstr(payload, pos)?;
        let type_oid = be_u32(payload, next + 6)?;
        columns.push(Column { name, type_oid });
        pos = next + 18;
    }
    Ok(columns)
}

/// Parses `DataRow`: count, then per value an `i32` length (−1 = NULL)
/// and that many bytes of text.
fn decode_data_row(payload: &[u8]) -> io::Result<Vec<Option<String>>> {
    let nvalues = be_u16(payload, 0)? as usize;
    let mut values = Vec::with_capacity(nvalues);
    let mut pos = 2;
    for _ in 0..nvalues {
        let len = be_u32(payload, pos)? as i32;
        pos += 4;
        if len < 0 {
            values.push(None);
            continue;
        }
        let len = len as usize;
        let raw = payload
            .get(pos..pos + len)
            .ok_or_else(|| bad_data("truncated DataRow value".into()))?;
        let text =
            std::str::from_utf8(raw).map_err(|_| bad_data("non-UTF-8 DataRow value".into()))?;
        values.push(Some(text.to_string()));
        pos += len;
    }
    Ok(values)
}

/// Parses the field list of `ErrorResponse`/`NoticeResponse` down to the
/// SQLSTATE (`C`) and message (`M`).
fn decode_fields(payload: &[u8]) -> io::Result<ServerError> {
    let mut sqlstate = String::new();
    let mut message = String::new();
    let mut pos = 0;
    loop {
        match payload.get(pos) {
            None => return Err(bad_data("unterminated response fields".into())),
            Some(0) => break,
            Some(&field) => {
                let (value, next) = cstr(payload, pos + 1)?;
                match field {
                    b'C' => sqlstate = value,
                    b'M' => message = value,
                    _ => {}
                }
                pos = next;
            }
        }
    }
    Ok(ServerError { sqlstate, message })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{self, Field};

    fn payload_of(buf: &[u8]) -> &[u8] {
        // kind byte + 4-byte length (incl. itself) + payload
        &buf[5..]
    }

    #[test]
    fn client_decodes_what_the_server_codec_encodes() {
        let mut buf = Vec::new();
        codec::row_description(
            &mut buf,
            &[Field::text("aggregate"), Field::float8("estimate"), Field::int8("oracle_calls")],
        );
        let columns = decode_row_description(payload_of(&buf)).unwrap();
        assert_eq!(
            columns,
            vec![
                Column { name: "aggregate".into(), type_oid: codec::oid::TEXT },
                Column { name: "estimate".into(), type_oid: codec::oid::FLOAT8 },
                Column { name: "oracle_calls".into(), type_oid: codec::oid::INT8 },
            ]
        );

        let mut buf = Vec::new();
        codec::data_row(&mut buf, &[Some("AVG(links)"), Some("3.25"), None]);
        let row = decode_data_row(payload_of(&buf)).unwrap();
        assert_eq!(row, vec![Some("AVG(links)".into()), Some("3.25".into()), None]);

        let mut buf = Vec::new();
        codec::error_response(&mut buf, "42P01", "unknown table `nope`");
        let err = decode_fields(payload_of(&buf)).unwrap();
        assert_eq!(err.sqlstate, "42P01");
        assert_eq!(err.message, "unknown table `nope`");
    }

    #[test]
    fn outcome_accessors_parse_cells() {
        let outcome = QueryOutcome {
            columns: vec![],
            rows: vec![vec![Some("AVG(x)".into()), Some("1.5".into()), None]],
            ..Default::default()
        };
        assert_eq!(outcome.text(0, 0), Some("AVG(x)"));
        assert_eq!(outcome.f64(0, 1), Some(1.5));
        assert_eq!(outcome.f64(0, 2), None, "NULL cell");
        assert_eq!(outcome.f64(1, 0), None, "row out of range");
    }
}
