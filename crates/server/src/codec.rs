//! PostgreSQL wire-protocol message framing: length-prefixed big-endian
//! codecs for the **simple query** subprotocol.
//!
//! This module is pure bytes-in/bytes-out — no sockets — so every decode
//! path can be exercised on hostile input. It is a designated never-panic
//! module (see `abae-lint`'s `no_panic_decode` rule): malformed or
//! adversarial bytes must surface as a typed [`WireError`], never as a
//! panic, an overflow, or an out-of-bounds index. The framing layer in
//! [`crate::server`] decides what to do with a `WireError` (answer an
//! `ErrorResponse` and drop the connection, since framing is lost).
//!
//! Layout of the v3 protocol (all integers big-endian):
//!
//! * **Startup packet** (no type byte): `int32 len` (including itself),
//!   `int32 code` — the protocol version `3.0` ([`PROTOCOL_VERSION_3`]) or
//!   one of the magic request codes ([`SSL_REQUEST`], [`CANCEL_REQUEST`]) —
//!   then NUL-terminated `key`/`value` parameter pairs ended by one
//!   terminating NUL.
//! * **Typed message** (everything after startup): `byte1 kind`,
//!   `int32 len` (including itself, excluding the kind byte), payload.
//!
//! Encoding helpers build backend messages into a caller-owned `Vec<u8>`
//! so one flat buffer per batch of messages reaches the socket.

/// Protocol version 3.0: `3 << 16 | 0`.
pub const PROTOCOL_VERSION_3: u32 = 196_608;
/// Magic startup code for an SSL negotiation request (`80877103`). The
/// server answers a single `'N'` byte and the client retries in clear.
pub const SSL_REQUEST: u32 = 80_877_103;
/// Magic startup code for an out-of-band cancel request (`80877102`).
pub const CANCEL_REQUEST: u32 = 80_877_102;
/// Magic startup code for GSSAPI encryption negotiation (`80877104`);
/// answered `'N'` like [`SSL_REQUEST`].
pub const GSSENC_REQUEST: u32 = 80_877_104;

/// Hard ceiling on any frame length this server will buffer. A hostile
/// length prefix larger than this is rejected before any allocation.
pub const MAX_FRAME_LEN: usize = 1 << 20;
/// Startup packets are tiny (a handful of parameter strings); cap them
/// harder than regular frames.
pub const MAX_STARTUP_LEN: usize = 10_000;

/// Decode failure on hostile or malformed bytes. Every variant is a
/// protocol violation by the peer; none of them is recoverable within the
/// current connection because frame synchronization is lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the structure it promised.
    Truncated,
    /// A length prefix exceeds the hard frame ceiling.
    Oversize {
        /// Length the peer claimed.
        claimed: u64,
        /// Ceiling it violated.
        max: usize,
    },
    /// A length prefix is smaller than the fixed header it must cover.
    BadLength(u32),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A NUL-terminated field is missing its terminator.
    MissingNul,
    /// The startup packet's parameter section is malformed (a key without
    /// a value, or bytes after the terminating NUL).
    BadStartup,
    /// The startup code is neither protocol 3.0 nor a known magic request.
    UnknownProtocol(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::Oversize { claimed, max } => {
                write!(f, "length prefix {claimed} exceeds the {max}-byte frame ceiling")
            }
            WireError::BadLength(n) => write!(f, "length prefix {n} is smaller than its header"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::MissingNul => write!(f, "string field is missing its NUL terminator"),
            WireError::BadStartup => write!(f, "malformed startup parameter section"),
            WireError::UnknownProtocol(code) => write!(f, "unknown protocol code {code}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Reads a big-endian `u32` at `pos`.
fn read_u32(buf: &[u8], pos: usize) -> Result<u32, WireError> {
    let bytes = buf.get(pos..pos.checked_add(4).ok_or(WireError::Truncated)?);
    match bytes {
        Some([a, b, c, d]) => Ok(u32::from_be_bytes([*a, *b, *c, *d])),
        _ => Err(WireError::Truncated),
    }
}

/// Reads a NUL-terminated UTF-8 string starting at `pos`; returns the
/// string and the position just past the terminator.
fn read_cstr(buf: &[u8], pos: usize) -> Result<(&str, usize), WireError> {
    let tail = buf.get(pos..).ok_or(WireError::Truncated)?;
    let nul = tail.iter().position(|&b| b == 0).ok_or(WireError::MissingNul)?;
    let raw = tail.get(..nul).ok_or(WireError::Truncated)?;
    let s = std::str::from_utf8(raw).map_err(|_| WireError::BadUtf8)?;
    let next = pos.checked_add(nul).and_then(|p| p.checked_add(1)).ok_or(WireError::Truncated)?;
    Ok((s, next))
}

/// Validates a startup packet's 4-byte length prefix and returns the
/// number of payload bytes that follow it (the declared length minus the
/// prefix itself). Hostile lengths (below 8, above [`MAX_STARTUP_LEN`])
/// are rejected before any read or allocation.
pub fn startup_payload_len(prefix: [u8; 4]) -> Result<usize, WireError> {
    let len = u32::from_be_bytes(prefix);
    // Minimum: the length word itself plus the 4-byte protocol code.
    if len < 8 {
        return Err(WireError::BadLength(len));
    }
    let len = len as usize;
    if len > MAX_STARTUP_LEN {
        return Err(WireError::Oversize { claimed: len as u64, max: MAX_STARTUP_LEN });
    }
    Ok(len - 4)
}

/// Validates a typed message's 4-byte length prefix and returns the number
/// of payload bytes that follow it.
pub fn frame_payload_len(prefix: [u8; 4]) -> Result<usize, WireError> {
    let len = u32::from_be_bytes(prefix);
    // Minimum: the length word itself.
    if len < 4 {
        return Err(WireError::BadLength(len));
    }
    let len = len as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversize { claimed: len as u64, max: MAX_FRAME_LEN });
    }
    Ok(len - 4)
}

/// A decoded startup packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Startup {
    /// A protocol-3.0 startup with its parameter list, in wire order
    /// (`user`, `database`, …).
    Start(Vec<(String, String)>),
    /// `SSLRequest` / `GSSENCRequest`: answer `'N'` and read the next
    /// startup packet in clear.
    TlsProbe,
    /// `CancelRequest`: no session follows; close the connection.
    Cancel,
}

/// Decodes a startup payload (everything after the length prefix).
pub fn decode_startup(payload: &[u8]) -> Result<Startup, WireError> {
    let code = read_u32(payload, 0)?;
    match code {
        SSL_REQUEST | GSSENC_REQUEST => Ok(Startup::TlsProbe),
        CANCEL_REQUEST => Ok(Startup::Cancel),
        PROTOCOL_VERSION_3 => {
            let mut params = Vec::new();
            let mut pos = 4;
            loop {
                // A single NUL here terminates the parameter section.
                match payload.get(pos) {
                    None => return Err(WireError::MissingNul),
                    Some(0) => {
                        // Nothing may follow the terminator.
                        if pos + 1 != payload.len() {
                            return Err(WireError::BadStartup);
                        }
                        return Ok(Startup::Start(params));
                    }
                    Some(_) => {}
                }
                let (key, next) = read_cstr(payload, pos)?;
                // A key must be followed by a value, not the terminator.
                if payload.get(next).is_none() {
                    return Err(WireError::BadStartup);
                }
                let (value, after) = read_cstr(payload, next)?;
                params.push((key.to_string(), value.to_string()));
                pos = after;
            }
        }
        other => Err(WireError::UnknownProtocol(other)),
    }
}

/// A decoded frontend message (the client-to-server direction this server
/// understands; anything else surfaces as [`FrontendMessage::Unknown`] so
/// the connection loop can answer a protocol error without dying).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendMessage {
    /// `'Q'`: one simple-protocol query string (may hold several
    /// `;`-separated statements).
    Query(String),
    /// `'X'`: graceful connection shutdown.
    Terminate,
    /// Any other type byte (e.g. the extended protocol's `'P'`/`'B'`).
    Unknown(u8),
}

/// Decodes a typed frontend message from its kind byte and payload.
pub fn decode_frontend(kind: u8, payload: &[u8]) -> Result<FrontendMessage, WireError> {
    match kind {
        b'Q' => {
            let (sql, next) = read_cstr(payload, 0)?;
            if next != payload.len() {
                return Err(WireError::Truncated);
            }
            Ok(FrontendMessage::Query(sql.to_string()))
        }
        b'X' => Ok(FrontendMessage::Terminate),
        other => Ok(FrontendMessage::Unknown(other)),
    }
}

// --------------------------------------------------------------- encoding

/// Postgres type OIDs for the column types this server emits (text wire
/// format for all of them).
pub mod oid {
    /// `text`
    pub const TEXT: u32 = 25;
    /// `int8` / `bigint`
    pub const INT8: u32 = 20;
    /// `float8` / `double precision`
    pub const FLOAT8: u32 = 701;
}

/// One column of a [`row_description`] message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Field<'a> {
    /// Column name.
    pub name: &'a str,
    /// Postgres type OID (see [`oid`]).
    pub type_oid: u32,
}

impl<'a> Field<'a> {
    /// A `text` column.
    pub fn text(name: &'a str) -> Self {
        Self { name, type_oid: oid::TEXT }
    }

    /// A `float8` column.
    pub fn float8(name: &'a str) -> Self {
        Self { name, type_oid: oid::FLOAT8 }
    }

    /// An `int8` column.
    pub fn int8(name: &'a str) -> Self {
        Self { name, type_oid: oid::INT8 }
    }

    /// The type's fixed byte width on the binary wire (`-1` for varlena);
    /// advisory only under the text format, but clients display it.
    fn typlen(&self) -> i16 {
        match self.type_oid {
            oid::INT8 => 8,
            oid::FLOAT8 => 8,
            _ => -1,
        }
    }
}

/// Appends one framed message: `kind`, `int32 len`, `body`.
fn frame(out: &mut Vec<u8>, kind: u8, body: &[u8]) {
    out.push(kind);
    // Body length is bounded by MAX_FRAME_LEN at every call site; the +4
    // counts the length word itself, per protocol.
    out.extend_from_slice(&((body.len() as u32).wrapping_add(4)).to_be_bytes());
    out.extend_from_slice(body);
}

/// Appends a NUL-terminated string to a message body.
fn put_cstr(body: &mut Vec<u8>, s: &str) {
    body.extend_from_slice(s.as_bytes());
    body.push(0);
}

/// `AuthenticationOk` (`'R'`, code 0): this server is auth-less.
pub fn authentication_ok(out: &mut Vec<u8>) {
    frame(out, b'R', &0u32.to_be_bytes());
}

/// `ParameterStatus` (`'S'`): one server parameter the client may cache.
pub fn parameter_status(out: &mut Vec<u8>, key: &str, value: &str) {
    let mut body = Vec::with_capacity(key.len() + value.len() + 2);
    put_cstr(&mut body, key);
    put_cstr(&mut body, value);
    frame(out, b'S', &body);
}

/// `BackendKeyData` (`'K'`): cancel key for this session. This server does
/// not implement cancellation, but well-behaved clients expect the frame;
/// the pid slot carries the session id so `psql`'s `%p` is meaningful.
pub fn backend_key_data(out: &mut Vec<u8>, pid: u32, secret: u32) {
    let mut body = Vec::with_capacity(8);
    body.extend_from_slice(&pid.to_be_bytes());
    body.extend_from_slice(&secret.to_be_bytes());
    frame(out, b'K', &body);
}

/// `ReadyForQuery` (`'Z'`), always idle — this server has no transactions.
pub fn ready_for_query(out: &mut Vec<u8>) {
    frame(out, b'Z', b"I");
}

/// `RowDescription` (`'T'`).
pub fn row_description(out: &mut Vec<u8>, fields: &[Field<'_>]) {
    let mut body = Vec::new();
    body.extend_from_slice(&(fields.len() as u16).to_be_bytes());
    for f in fields {
        put_cstr(&mut body, f.name);
        body.extend_from_slice(&0u32.to_be_bytes()); // source table oid
        body.extend_from_slice(&0u16.to_be_bytes()); // source column
        body.extend_from_slice(&f.type_oid.to_be_bytes());
        body.extend_from_slice(&f.typlen().to_be_bytes());
        body.extend_from_slice(&(-1i32).to_be_bytes()); // typmod
        body.extend_from_slice(&0u16.to_be_bytes()); // text format
    }
    frame(out, b'T', &body);
}

/// `DataRow` (`'D'`): text-format values, `None` encoding SQL NULL.
pub fn data_row(out: &mut Vec<u8>, values: &[Option<&str>]) {
    let mut body = Vec::new();
    body.extend_from_slice(&(values.len() as u16).to_be_bytes());
    for v in values {
        match v {
            None => body.extend_from_slice(&(-1i32).to_be_bytes()),
            Some(s) => {
                body.extend_from_slice(&(s.len() as u32).to_be_bytes());
                body.extend_from_slice(s.as_bytes());
            }
        }
    }
    frame(out, b'D', &body);
}

/// `CommandComplete` (`'C'`) with its command tag (`SELECT 3`, …).
pub fn command_complete(out: &mut Vec<u8>, tag: &str) {
    let mut body = Vec::with_capacity(tag.len() + 1);
    put_cstr(&mut body, tag);
    frame(out, b'C', &body);
}

/// `EmptyQueryResponse` (`'I'`): the query string held no statement.
pub fn empty_query_response(out: &mut Vec<u8>) {
    frame(out, b'I', &[]);
}

/// `ErrorResponse` (`'E'`) with severity `ERROR`, the given SQLSTATE code,
/// and message.
pub fn error_response(out: &mut Vec<u8>, sqlstate: &str, message: &str) {
    response_fields(out, b'E', "ERROR", sqlstate, message);
}

/// `NoticeResponse` (`'N'`) with severity `NOTICE`; used for per-snapshot
/// progress while an anytime query runs.
pub fn notice_response(out: &mut Vec<u8>, message: &str) {
    response_fields(out, b'N', "NOTICE", "00000", message);
}

/// Shared field layout of `ErrorResponse` / `NoticeResponse`: `S`everity
/// (with the non-localized `V` twin), SQLSTATE `C`ode, `M`essage, NUL.
fn response_fields(out: &mut Vec<u8>, kind: u8, severity: &str, sqlstate: &str, message: &str) {
    let mut body = Vec::new();
    body.push(b'S');
    put_cstr(&mut body, severity);
    body.push(b'V');
    put_cstr(&mut body, severity);
    body.push(b'C');
    put_cstr(&mut body, sqlstate);
    body.push(b'M');
    put_cstr(&mut body, message);
    body.push(0);
    frame(out, kind, &body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn startup_length_prefix_bounds() {
        assert_eq!(startup_payload_len(8u32.to_be_bytes()), Ok(4));
        assert_eq!(startup_payload_len(100u32.to_be_bytes()), Ok(96));
        assert_eq!(startup_payload_len(7u32.to_be_bytes()), Err(WireError::BadLength(7)));
        assert_eq!(startup_payload_len(0u32.to_be_bytes()), Err(WireError::BadLength(0)));
        assert!(matches!(
            startup_payload_len(u32::MAX.to_be_bytes()),
            Err(WireError::Oversize { .. })
        ));
        assert!(matches!(
            startup_payload_len(((MAX_STARTUP_LEN + 1) as u32).to_be_bytes()),
            Err(WireError::Oversize { .. })
        ));
    }

    #[test]
    fn frame_length_prefix_bounds() {
        assert_eq!(frame_payload_len(4u32.to_be_bytes()), Ok(0));
        assert_eq!(frame_payload_len(3u32.to_be_bytes()), Err(WireError::BadLength(3)));
        assert!(matches!(
            frame_payload_len(((MAX_FRAME_LEN + 1) as u32).to_be_bytes()),
            Err(WireError::Oversize { .. })
        ));
    }

    fn startup_bytes(params: &[(&str, &str)]) -> Vec<u8> {
        let mut p = PROTOCOL_VERSION_3.to_be_bytes().to_vec();
        for (k, v) in params {
            p.extend_from_slice(k.as_bytes());
            p.push(0);
            p.extend_from_slice(v.as_bytes());
            p.push(0);
        }
        p.push(0);
        p
    }

    #[test]
    fn decodes_startup_parameters() {
        let payload = startup_bytes(&[("user", "abae"), ("database", "demo")]);
        let s = decode_startup(&payload).unwrap();
        assert_eq!(
            s,
            Startup::Start(vec![
                ("user".into(), "abae".into()),
                ("database".into(), "demo".into()),
            ])
        );
        // No parameters at all is legal (just the terminator).
        assert_eq!(decode_startup(&startup_bytes(&[])).unwrap(), Startup::Start(vec![]));
    }

    #[test]
    fn decodes_magic_requests() {
        assert_eq!(decode_startup(&SSL_REQUEST.to_be_bytes()), Ok(Startup::TlsProbe));
        assert_eq!(decode_startup(&GSSENC_REQUEST.to_be_bytes()), Ok(Startup::TlsProbe));
        assert_eq!(decode_startup(&CANCEL_REQUEST.to_be_bytes()), Ok(Startup::Cancel));
        assert_eq!(
            decode_startup(&123u32.to_be_bytes()),
            Err(WireError::UnknownProtocol(123))
        );
    }

    #[test]
    fn hostile_startup_truncation_at_every_byte_is_a_typed_error() {
        let payload = startup_bytes(&[("user", "abae")]);
        for cut in 0..payload.len() {
            let hostile = &payload[..cut];
            assert!(
                decode_startup(hostile).is_err(),
                "truncation at byte {cut} must be a WireError, got Ok"
            );
        }
    }

    #[test]
    fn hostile_startup_shapes_are_typed_errors() {
        // Key whose NUL is the last byte: no value can follow.
        let mut p = PROTOCOL_VERSION_3.to_be_bytes().to_vec();
        p.extend_from_slice(b"user\0");
        assert_eq!(decode_startup(&p), Err(WireError::BadStartup));
        // The two-NUL shape is ambiguous (key + empty value, or key +
        // terminator?); it decodes as an empty value, leaving the
        // parameter section unterminated — still a typed error.
        let mut p = PROTOCOL_VERSION_3.to_be_bytes().to_vec();
        p.extend_from_slice(b"user\0");
        p.push(0);
        assert_eq!(decode_startup(&p), Err(WireError::MissingNul));
        // Bytes after the terminating NUL.
        let mut p = startup_bytes(&[]);
        p.push(7);
        assert_eq!(decode_startup(&p), Err(WireError::BadStartup));
        // Invalid UTF-8 in a parameter.
        let mut p = PROTOCOL_VERSION_3.to_be_bytes().to_vec();
        p.extend_from_slice(&[0xFF, 0xFE, 0, b'v', 0, 0]);
        assert_eq!(decode_startup(&p), Err(WireError::BadUtf8));
    }

    #[test]
    fn decodes_query_and_terminate() {
        assert_eq!(
            decode_frontend(b'Q', b"SELECT 1\0"),
            Ok(FrontendMessage::Query("SELECT 1".into()))
        );
        assert_eq!(decode_frontend(b'X', b""), Ok(FrontendMessage::Terminate));
        assert_eq!(decode_frontend(b'P', b"whatever"), Ok(FrontendMessage::Unknown(b'P')));
    }

    #[test]
    fn hostile_query_payloads_are_typed_errors() {
        // Missing NUL terminator.
        assert_eq!(decode_frontend(b'Q', b"SELECT 1"), Err(WireError::MissingNul));
        // Trailing bytes after the terminator.
        assert_eq!(decode_frontend(b'Q', b"SELECT 1\0junk"), Err(WireError::Truncated));
        // Invalid UTF-8.
        assert_eq!(decode_frontend(b'Q', &[0xFF, 0]), Err(WireError::BadUtf8));
    }

    /// Decodes one framed message from `buf`, returning (kind, payload).
    fn split_frame(buf: &[u8]) -> (u8, &[u8], &[u8]) {
        let kind = buf[0];
        let len = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
        (kind, &buf[5..1 + len], &buf[1 + len..])
    }

    #[test]
    fn encoded_frames_carry_protocol_lengths() {
        let mut out = Vec::new();
        authentication_ok(&mut out);
        ready_for_query(&mut out);
        let (kind, payload, rest) = split_frame(&out);
        assert_eq!((kind, payload), (b'R', &0u32.to_be_bytes()[..]));
        let (kind, payload, rest) = split_frame(rest);
        assert_eq!((kind, payload), (b'Z', &b"I"[..]));
        assert!(rest.is_empty());
    }

    #[test]
    fn row_description_and_data_row_roundtrip_shape() {
        let mut out = Vec::new();
        row_description(&mut out, &[Field::text("aggregate"), Field::float8("estimate")]);
        let (kind, payload, _) = split_frame(&out);
        assert_eq!(kind, b'T');
        assert_eq!(u16::from_be_bytes([payload[0], payload[1]]), 2);
        // First field name sits right after the count.
        assert!(payload[2..].starts_with(b"aggregate\0"));

        let mut out = Vec::new();
        data_row(&mut out, &[Some("AVG(x)"), None]);
        let (kind, payload, _) = split_frame(&out);
        assert_eq!(kind, b'D');
        assert_eq!(u16::from_be_bytes([payload[0], payload[1]]), 2);
        let len1 = u32::from_be_bytes([payload[2], payload[3], payload[4], payload[5]]) as usize;
        assert_eq!(&payload[6..6 + len1], b"AVG(x)");
        let null = i32::from_be_bytes([
            payload[6 + len1],
            payload[7 + len1],
            payload[8 + len1],
            payload[9 + len1],
        ]);
        assert_eq!(null, -1, "NULL is length -1");
    }

    #[test]
    fn error_and_notice_responses_carry_fields() {
        let mut out = Vec::new();
        error_response(&mut out, "42601", "syntax error");
        let (kind, payload, _) = split_frame(&out);
        assert_eq!(kind, b'E');
        let text = String::from_utf8_lossy(payload);
        assert!(text.contains("ERROR") && text.contains("42601") && text.contains("syntax error"));
        assert_eq!(payload.last(), Some(&0));

        let mut out = Vec::new();
        notice_response(&mut out, "progress: 100 labels");
        let (kind, payload, _) = split_frame(&out);
        assert_eq!(kind, b'N');
        assert!(String::from_utf8_lossy(payload).contains("progress: 100 labels"));
    }

    #[test]
    fn command_complete_and_empty_query() {
        let mut out = Vec::new();
        command_complete(&mut out, "SELECT 3");
        empty_query_response(&mut out);
        let (kind, payload, rest) = split_frame(&out);
        assert_eq!((kind, payload), (b'C', &b"SELECT 3\0"[..]));
        let (kind, payload, rest) = split_frame(rest);
        assert_eq!((kind, payload.len()), (b'I', 0));
        assert!(rest.is_empty());
    }
}
