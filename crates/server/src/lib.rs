//! `abae-server` — a Postgres-wire network serving layer for the ABae
//! engine, so any `psql`-speaking client can run ABAE queries.
//!
//! The server speaks the PostgreSQL **simple query protocol** (protocol
//! 3.0) over plain TCP with a thread per connection — no async runtime,
//! matching the workspace's offline/vendored-only build. The surface:
//!
//! * **Startup**: protocol-3.0 startup packet with parameter negotiation;
//!   `SSLRequest`/`GSSENCRequest` are answered `'N'` (clear text), and the
//!   server is auth-less (`AuthenticationOk` immediately).
//! * **`Query`**: one round of `RowDescription` / `DataRow` /
//!   `CommandComplete` per statement; multi-statement query strings are
//!   split on top-level `;` like a real Postgres backend.
//! * **Errors**: [`abae_query::QueryError`] maps to SQLSTATE codes on an
//!   `ErrorResponse` — the connection survives and answers the next query.
//! * **Shutdown**: `Terminate` or EOF closes the connection cleanly.
//!
//! One TCP connection maps to one [`abae_query::Session`], so the engine's
//! determinism contract survives the wire: connection *N* (in accept
//! order) replays the RNG stream of session id *N*, bit for bit — the
//! integration suite compares wire results against in-process
//! [`abae_query::Engine::session_with_id`] runs byte-for-byte.
//!
//! Statement surface (all routed through [`abae_query::Session::run`]):
//! ABAE `SELECT` (multi-aggregate and `GROUP BY`, with estimate/CI
//! columns), `CREATE PROXY`, `SHOW PROXIES`, `EXPLAIN`, and anytime
//! `UNTIL CI WIDTH` queries served progressively — one `NoticeResponse`
//! per labeling-chunk snapshot before the final rows.
//!
//! Modules: [`codec`] is the pure bytes-level message framing (hostile
//! -input-safe decode under the workspace no-panic contract), [`server`]
//! is the TCP listener and connection lifecycle, and [`client`] is the
//! minimal in-repo wire client the integration tests, the qps bench's
//! wire mode, and `abae-server --self-check` drive the server with.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod codec;
pub mod server;

pub use client::{Column, QueryOutcome, ServerError, WireClient};
pub use codec::WireError;
pub use server::{Server, ServerHandle};
