//! TCP listener and per-connection lifecycle: the piece that turns a
//! socket into an [`abae_query::Session`].
//!
//! Threading model: [`Server::serve`] runs a blocking accept loop and
//! hands each accepted socket to a dedicated thread (ROADMAP blesses
//! thread-per-connection as the first cut; there is no async runtime in
//! the offline build). Each connection opens one session via
//! [`Engine::session`], so accept order *is* session-id order and the
//! engine's per-session determinism contract holds over the wire.
//!
//! Message flow per connection:
//!
//! ```text
//! client                                server
//!   SSLRequest  ───────────────────────▶  (optional, any number)
//!               ◀───────────────────────  'N' (clear text only)
//!   StartupMessage(user, database…) ───▶
//!               ◀───────────────────────  AuthenticationOk
//!               ◀───────────────────────  ParameterStatus × k
//!               ◀───────────────────────  BackendKeyData(session id)
//!               ◀───────────────────────  ReadyForQuery
//!   Query("SELECT …") ─────────────────▶
//!               ◀───────────────────────  NoticeResponse × j  (anytime)
//!               ◀───────────────────────  RowDescription
//!               ◀───────────────────────  DataRow × n
//!               ◀───────────────────────  CommandComplete
//!               ◀───────────────────────  ReadyForQuery
//!   Terminate ─────────────────────────▶  (or EOF)
//! ```
//!
//! Because every connection's session shares one [`Engine`], concurrent
//! connections labeling the same `(table, predicate)` share oracle
//! invocations whenever the engine was built with the governor on
//! (`EngineBuilder::governor(true)`) — the batcher's counters are
//! readable over the wire with the `SHOW STATS` utility statement.
//!
//! A [`QueryError`] becomes an `ErrorResponse` (SQLSTATE from
//! [`sqlstate`]) followed by `ReadyForQuery` — the connection stays
//! usable. A framing-level [`WireError`] is unrecoverable (message
//! synchronization is lost): the server answers `ErrorResponse 08P01`
//! best-effort and closes.

use crate::codec::{self, Field, FrontendMessage, Startup, WireError};
use abae_query::{parse_statement, Engine, QueryError, QueryResult, Session, Statement};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// SQLSTATE code for one [`QueryError`], following Postgres conventions
/// where a close class exists (syntax error, undefined table/column/
/// object, invalid parameter value, feature not supported) and the
/// `internal_error` class for engine-side failures.
pub fn sqlstate(err: &QueryError) -> &'static str {
    match err {
        QueryError::Parse(_) => "42601",
        QueryError::UnknownTable(_) => "42P01",
        QueryError::UnresolvedPredicate { .. } => "42703",
        QueryError::UnknownProxy { .. } => "42704",
        QueryError::UnboundParameter(_) => "42P02",
        QueryError::Config(_) => "22023",
        QueryError::Unsupported(_) => "0A000",
        QueryError::Train(_) | QueryError::Table(_) | QueryError::GroupBy(_) => "XX000",
    }
}

/// SQLSTATE for protocol violations (hostile framing, unknown messages).
const PROTOCOL_VIOLATION: &str = "08P01";

/// Splits a simple-protocol query string into statements on top-level
/// `;`, respecting single-quoted strings (with `''` escaping falling out
/// naturally: each `'` toggles the in-string flag). Empty statements are
/// dropped — `;;` and trailing `;` are legal, as in Postgres.
pub fn split_statements(sql: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in sql.char_indices() {
        match c {
            '\'' => in_string = !in_string,
            ';' if !in_string => {
                out.push(&sql[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&sql[start..]);
    out.into_iter().map(str::trim).filter(|s| !s.is_empty()).collect()
}

/// A Postgres-wire server bound to a TCP address, serving one [`Engine`].
#[derive(Debug)]
pub struct Server {
    engine: Engine,
    listener: TcpListener,
    verbose: bool,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:5433"`, or port `0` for an
    /// ephemeral port — read it back with [`Server::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(engine: Engine, addr: A) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self { engine, listener, verbose: false })
    }

    /// Logs one line per connection (session id, peer, duration) to
    /// stderr. Off by default — benches and tests want silence.
    pub fn verbose(mut self, on: bool) -> Self {
        self.verbose = on;
        self
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections forever on the calling thread (one spawned
    /// thread per accepted connection). Returns only on accept failure.
    pub fn serve(self) -> io::Result<()> {
        self.serve_until(None)
    }

    /// The accept loop. With a stop flag, checks it after every accept —
    /// [`ServerHandle::shutdown`] sets the flag and then self-connects to
    /// unblock the accept call.
    fn serve_until(self, stop: Option<Arc<AtomicBool>>) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst)) {
                return Ok(());
            }
            let stream = conn?;
            // Accept order is session-id order: the determinism-over-the-
            // wire contract (connection N replays session_with_id(N)).
            let session = self.engine.session();
            let verbose = self.verbose;
            let name = format!("pgwire-{}", session.id());
            let spawned = std::thread::Builder::new().name(name).spawn(move || {
                serve_connection(session, stream, verbose);
            });
            if let Err(e) = spawned {
                eprintln!("abae-server: cannot spawn connection thread: {e}");
            }
        }
        Ok(())
    }

    /// Serves on a background thread; the returned handle shuts the
    /// accept loop down on [`ServerHandle::shutdown`] or drop. In-flight
    /// connection threads are not joined — clients end them with
    /// `Terminate`.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("pgwire-accept".to_string())
            .spawn(move || {
                let _ = self.serve_until(Some(flag));
            })?;
        Ok(ServerHandle { addr, stop, join: Some(join) })
    }
}

/// Handle on a background [`Server`]: address + clean shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        let Some(join) = self.join.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call; the loop sees the flag and returns.
        let _ = TcpStream::connect(self.addr);
        let _ = join.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Runs one connection start to finish, reporting nothing: a peer that
/// hangs up mid-message is routine for a server, not a failure.
fn serve_connection(session: Session, stream: TcpStream, verbose: bool) {
    let id = session.id();
    let peer = stream.peer_addr();
    // abae-lint: allow(wall_clock) -- connection-duration metric for the serve log; timing never feeds query results
    let started = std::time::Instant::now();
    let result = run_connection(session, stream);
    if verbose {
        let peer = peer.map_or_else(|_| "?".to_string(), |p| p.to_string());
        let outcome = match &result {
            Ok(()) => "closed".to_string(),
            Err(e) => format!("dropped: {e}"),
        };
        eprintln!(
            "abae-server: session {id} peer {peer} {outcome} after {:?}",
            started.elapsed()
        );
    }
}

/// Connection body: startup negotiation, greeting, then the query loop.
fn run_connection(mut session: Session, mut stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;

    // Startup phase: any number of SSL/GSS probes (answered 'N'), then a
    // protocol-3.0 startup packet, or a cancel request (no session).
    loop {
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix)?;
        let len = match codec::startup_payload_len(prefix) {
            Ok(len) => len,
            Err(e) => return reject_startup(&mut stream, &e),
        };
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload)?;
        match codec::decode_startup(&payload) {
            Ok(Startup::TlsProbe) => {
                stream.write_all(b"N")?;
                stream.flush()?;
            }
            Ok(Startup::Cancel) => return Ok(()),
            Ok(Startup::Start(_params)) => break,
            Err(e) => return reject_startup(&mut stream, &e),
        }
    }

    // Greeting: auth-less, a few parameters well-behaved clients expect,
    // the session id in the key-data pid slot, then ready.
    let mut out = Vec::new();
    codec::authentication_ok(&mut out);
    codec::parameter_status(&mut out, "server_version", "13.0");
    codec::parameter_status(&mut out, "server_encoding", "UTF8");
    codec::parameter_status(&mut out, "client_encoding", "UTF8");
    codec::parameter_status(&mut out, "DateStyle", "ISO, MDY");
    codec::parameter_status(&mut out, "integer_datetimes", "on");
    codec::parameter_status(&mut out, "standard_conforming_strings", "on");
    codec::backend_key_data(&mut out, session.id() as u32, 0);
    codec::ready_for_query(&mut out);
    stream.write_all(&out)?;
    stream.flush()?;

    // Query loop: one framed frontend message at a time.
    loop {
        let mut kind = [0u8; 1];
        match stream.read_exact(&mut kind) {
            Ok(()) => {}
            // EOF between messages is a clean (if impolite) disconnect.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        }
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix)?;
        let len = match codec::frame_payload_len(prefix) {
            Ok(len) => len,
            Err(e) => return protocol_error(&mut stream, &e),
        };
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload)?;
        match codec::decode_frontend(kind[0], &payload) {
            Ok(FrontendMessage::Query(sql)) => {
                handle_query(&mut session, &sql, &mut stream)?;
                let mut out = Vec::new();
                codec::ready_for_query(&mut out);
                stream.write_all(&out)?;
                stream.flush()?;
            }
            Ok(FrontendMessage::Terminate) => return Ok(()),
            Ok(FrontendMessage::Unknown(k)) => {
                // Framing is intact (the whole frame was read), so the
                // connection survives — answer an error and stay ready.
                let mut out = Vec::new();
                codec::error_response(
                    &mut out,
                    PROTOCOL_VIOLATION,
                    &format!(
                        "unsupported frontend message {:?}; this server speaks the \
                         simple query protocol only",
                        k as char
                    ),
                );
                codec::ready_for_query(&mut out);
                stream.write_all(&out)?;
                stream.flush()?;
            }
            // A hostile payload inside a known message: sync is intact,
            // but the message is garbage — report and close.
            Err(e) => return protocol_error(&mut stream, &e),
        }
    }
}

/// Best-effort `ErrorResponse` for a startup-phase violation, then close.
fn reject_startup(stream: &mut TcpStream, err: &WireError) -> io::Result<()> {
    let mut out = Vec::new();
    codec::error_response(&mut out, PROTOCOL_VIOLATION, &format!("startup failed: {err}"));
    let _ = stream.write_all(&out);
    let _ = stream.flush();
    Ok(())
}

/// Best-effort `ErrorResponse` for a post-startup protocol violation,
/// then close — frame synchronization cannot be trusted after one.
fn protocol_error(stream: &mut TcpStream, err: &WireError) -> io::Result<()> {
    let mut out = Vec::new();
    codec::error_response(&mut out, PROTOCOL_VIOLATION, &format!("protocol violation: {err}"));
    let _ = stream.write_all(&out);
    let _ = stream.flush();
    Ok(())
}

/// How one statement failed: a query-layer error (recoverable — the rest
/// of the query string is skipped, Postgres-style, and the connection
/// stays up) or a socket error (the connection is gone).
enum StatementFailure {
    Query(QueryError),
    Io(io::Error),
}

impl From<io::Error> for StatementFailure {
    fn from(e: io::Error) -> Self {
        StatementFailure::Io(e)
    }
}

/// Answers one `Query` message (which may hold several `;`-separated
/// statements). Query-layer errors are answered in-band; only socket
/// errors propagate.
fn handle_query(session: &mut Session, sql: &str, stream: &mut TcpStream) -> io::Result<()> {
    let statements = split_statements(sql);
    if statements.is_empty() {
        let mut out = Vec::new();
        codec::empty_query_response(&mut out);
        stream.write_all(&out)?;
        return Ok(());
    }
    for stmt in statements {
        match run_statement(session, stmt, stream) {
            Ok(()) => {}
            Err(StatementFailure::Io(e)) => return Err(e),
            Err(StatementFailure::Query(e)) => {
                let mut out = Vec::new();
                codec::error_response(&mut out, sqlstate(&e), &e.to_string());
                stream.write_all(&out)?;
                // Like Postgres: an error aborts the remainder of a
                // multi-statement query string.
                return Ok(());
            }
        }
    }
    Ok(())
}

/// Executes one statement and writes its result messages.
fn run_statement(
    session: &mut Session,
    stmt: &str,
    stream: &mut TcpStream,
) -> Result<(), StatementFailure> {
    // EXPLAIN is a frontend affordance (same contract as the CLI repl):
    // plan without spending oracle calls or advancing the RNG stream.
    let keyword = stmt.split_whitespace().next().unwrap_or("");
    if keyword.eq_ignore_ascii_case("EXPLAIN") {
        let rest = stmt[keyword.len()..].trim();
        let plan = session.explain(rest).map_err(StatementFailure::Query)?;
        let mut out = Vec::new();
        codec::row_description(&mut out, &[Field::text("QUERY PLAN")]);
        for line in plan.lines() {
            codec::data_row(&mut out, &[Some(line)]);
        }
        codec::command_complete(&mut out, "EXPLAIN");
        stream.write_all(&out)?;
        return Ok(());
    }

    // SHOW STATS is a server affordance, not engine SQL: one
    // `(stat, value)` row per engine-wide counter — sessions opened, the
    // oracle batcher's lifetime totals (shared batches, coalesced
    // requests, cache-served records), label-store hits/misses, and the
    // per-session oracle-spend ledger. A pure read of shared counters: no
    // oracle calls, no RNG advance, so interleaving it between queries
    // cannot perturb any session's results.
    if keyword.eq_ignore_ascii_case("SHOW")
        && stmt[keyword.len()..].trim().eq_ignore_ascii_case("STATS")
    {
        let stats = session.engine().stats();
        let b = stats.batcher;
        let mut rows: Vec<(String, u64)> = vec![
            ("sessions_opened".into(), stats.sessions_opened),
            ("batcher.requests".into(), b.requests),
            ("batcher.invocations".into(), b.invocations),
            ("batcher.shared_batches".into(), b.shared_batches),
            ("batcher.coalesced_requests".into(), b.coalesced_requests),
            ("batcher.labeled_records".into(), b.labeled_records),
            ("batcher.cache_served".into(), b.cache_served),
            ("label_store.hits".into(), stats.label_hits),
            ("label_store.misses".into(), stats.label_misses),
        ];
        for (id, spend) in stats.per_session_spend {
            rows.push((format!("session.{id}.oracle_spend"), spend));
        }
        let mut out = Vec::new();
        codec::row_description(&mut out, &[Field::text("stat"), Field::int8("value")]);
        for (name, value) in &rows {
            let value = value.to_string();
            codec::data_row(&mut out, &[Some(name.as_str()), Some(value.as_str())]);
        }
        codec::command_complete(&mut out, &format!("SHOW STATS {}", rows.len()));
        stream.write_all(&out)?;
        return Ok(());
    }

    // Anytime SELECTs (`UNTIL CI WIDTH`) run progressively: one
    // NoticeResponse per labeling-chunk snapshot, flushed immediately so
    // the client sees progress while the query runs, then the final rows.
    let progressive = matches!(
        parse_statement(stmt),
        Ok(Statement::Select(q)) if q.until_width.is_some()
    );
    if progressive {
        let mut notice_io: Option<io::Error> = None;
        let result = session.execute_progressive(stmt, |snap| {
            if notice_io.is_some() {
                return;
            }
            let mut line = format!("progress: {} labels", snap.budget_spent);
            if let Some(est) = snap.estimate() {
                line.push_str(&format!(", estimate {est}"));
            }
            if let Some(ci) = snap.ci() {
                line.push_str(&format!(", ci [{}, {}] width {}", ci.lo, ci.hi, ci.width()));
            }
            if snap.done {
                line.push_str(" (final)");
            }
            let mut out = Vec::new();
            codec::notice_response(&mut out, &line);
            if let Err(e) = stream.write_all(&out).and_then(|()| stream.flush()) {
                notice_io = Some(e);
            }
        });
        if let Some(e) = notice_io {
            return Err(StatementFailure::Io(e));
        }
        let result = result.map_err(StatementFailure::Query)?;
        let mut out = Vec::new();
        write_query_result(&mut out, &result);
        stream.write_all(&out)?;
        return Ok(());
    }

    // Everything else goes through the session's statement dispatcher.
    let outcome = session.run(stmt).map_err(StatementFailure::Query)?;
    let mut out = Vec::new();
    match outcome {
        abae_query::StatementOutcome::Rows(result) => write_query_result(&mut out, &result),
        abae_query::StatementOutcome::ProxyCreated(proxy) => {
            // `describe()` reports family, calibration, and training
            // spend; `psql` surfaces notices inline.
            codec::notice_response(&mut out, &proxy.describe());
            codec::command_complete(&mut out, "CREATE PROXY");
        }
        abae_query::StatementOutcome::Proxies(proxies) => {
            codec::row_description(&mut out, &[Field::text("proxy")]);
            for proxy in &proxies {
                let described = proxy.describe();
                codec::data_row(&mut out, &[Some(described.as_str())]);
            }
            codec::command_complete(&mut out, &format!("SHOW PROXIES {}", proxies.len()));
        }
    }
    stream.write_all(&out)?;
    Ok(())
}

/// Renders one float in Rust's shortest-round-trip `Display` form, which a
/// client can parse back to the bit-identical `f64` — the property the
/// wire-vs-in-process integration tests pin.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Writes a `SELECT` answer: `RowDescription` + `DataRow`s +
/// `CommandComplete`.
///
/// Scalar queries emit one row per SELECT-list aggregate with columns
/// `aggregate | estimate | ci_lo | ci_hi | ci_confidence | oracle_calls |
/// cache_hits | cache_misses`; GROUP BY queries emit one row per group
/// with `group_name` in place of `aggregate`. CI columns are NULL when the
/// query carries no CI (grouped rows without `WITH PROBABILITY`, …);
/// the oracle/cache accounting is per-query and repeats on every row.
fn write_query_result(out: &mut Vec<u8>, result: &QueryResult) {
    let accounting = [
        result.oracle_calls.to_string(),
        result.cache_hits.to_string(),
        result.cache_misses.to_string(),
    ];
    let mut nrows = 0u64;
    if let Some(groups) = &result.groups {
        codec::row_description(
            out,
            &[
                Field::text("group_name"),
                Field::float8("estimate"),
                Field::float8("ci_lo"),
                Field::float8("ci_hi"),
                Field::float8("ci_confidence"),
                Field::int8("oracle_calls"),
                Field::int8("cache_hits"),
                Field::int8("cache_misses"),
            ],
        );
        for row in groups {
            let estimate = fmt_f64(row.estimate);
            let ci = row.ci.map(|ci| [fmt_f64(ci.lo), fmt_f64(ci.hi), fmt_f64(ci.confidence)]);
            write_row(out, &row.name, &estimate, ci.as_ref(), &accounting);
            nrows += 1;
        }
    } else {
        codec::row_description(
            out,
            &[
                Field::text("aggregate"),
                Field::float8("estimate"),
                Field::float8("ci_lo"),
                Field::float8("ci_hi"),
                Field::float8("ci_confidence"),
                Field::int8("oracle_calls"),
                Field::int8("cache_hits"),
                Field::int8("cache_misses"),
            ],
        );
        for row in &result.rows {
            let label = format!("{}({})", row.func, row.expr);
            let estimate = fmt_f64(row.estimate);
            let ci = row.ci.map(|ci| [fmt_f64(ci.lo), fmt_f64(ci.hi), fmt_f64(ci.confidence)]);
            write_row(out, &label, &estimate, ci.as_ref(), &accounting);
            nrows += 1;
        }
    }
    codec::command_complete(out, &format!("SELECT {nrows}"));
}

/// One `DataRow` of the shared SELECT layout.
fn write_row(
    out: &mut Vec<u8>,
    label: &str,
    estimate: &str,
    ci: Option<&[String; 3]>,
    accounting: &[String; 3],
) {
    codec::data_row(
        out,
        &[
            Some(label),
            Some(estimate),
            ci.map(|c| c[0].as_str()),
            ci.map(|c| c[1].as_str()),
            ci.map(|c| c[2].as_str()),
            Some(accounting[0].as_str()),
            Some(accounting[1].as_str()),
            Some(accounting[2].as_str()),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_top_level_semicolons_only() {
        assert_eq!(split_statements("SELECT 1"), vec!["SELECT 1"]);
        assert_eq!(split_statements("a; b ;; c;"), vec!["a", "b", "c"]);
        assert_eq!(split_statements("  ;  ; "), Vec::<&str>::new());
        assert_eq!(split_statements(""), Vec::<&str>::new());
        // `;` inside a single-quoted string does not split.
        assert_eq!(
            split_statements("SELECT AVG(x) FROM t WHERE f(a) = 'x;y'; SHOW PROXIES"),
            vec!["SELECT AVG(x) FROM t WHERE f(a) = 'x;y'", "SHOW PROXIES"]
        );
        // `''` (escaped quote) keeps toggling consistently.
        assert_eq!(
            split_statements("SELECT * FROM t WHERE f(a) = 'it''s;fine'; b"),
            vec!["SELECT * FROM t WHERE f(a) = 'it''s;fine'", "b"]
        );
    }

    #[test]
    fn sqlstates_are_stable() {
        use abae_query::parser::parse_query;
        let parse_err = parse_query("SELECT oops").unwrap_err();
        assert_eq!(sqlstate(&QueryError::Parse(parse_err)), "42601");
        assert_eq!(sqlstate(&QueryError::UnknownTable("t".into())), "42P01");
        assert_eq!(
            sqlstate(&QueryError::UnresolvedPredicate { atom: "a".into(), table: "t".into() }),
            "42703"
        );
        assert_eq!(
            sqlstate(&QueryError::UnknownProxy {
                proxy: "p".into(),
                table: "t".into(),
                available: vec![],
            }),
            "42704"
        );
        assert_eq!(sqlstate(&QueryError::UnboundParameter("ORACLE LIMIT ?")), "42P02");
        assert_eq!(sqlstate(&QueryError::Unsupported("x".into())), "0A000");
    }

    #[test]
    fn float_display_round_trips_bit_identically() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0, 12345.678901234567] {
            let s = fmt_f64(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {s} -> {back}");
        }
    }
}
