//! Nonparametric bootstrap resampling and percentile confidence intervals.
//!
//! ABae's Algorithm 2 forms CIs by resampling, within each stratum, the
//! records drawn across both stages and recomputing the estimate `β` times;
//! the CI is the empirical `[α/2, 1 − α/2]` percentile interval. This module
//! provides the generic machinery (index resampling, percentile interval)
//! that `abae-core` composes per stratum.

use crate::quantile::quantile_sorted;
use rand::Rng;

/// A two-sided confidence interval `[lo, hi]` with its nominal coverage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Nominal coverage probability, e.g. `0.95`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Interval width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        self.lo <= value && value <= self.hi
    }
}

/// Draws `n` indices uniformly with replacement from `0..n` (one bootstrap
/// resample of an `n`-element sample).
///
/// Returns an empty vector when `n == 0`.
pub fn resample_indices<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n.max(1)) % n.max(1)).take(n).collect()
}

/// Fills `out` with `out.len()` indices drawn with replacement from `0..n`.
/// Reusing a workhorse buffer avoids an allocation per bootstrap trial.
pub fn resample_indices_into<R: Rng + ?Sized>(n: usize, out: &mut [usize], rng: &mut R) {
    debug_assert!(n > 0 || out.is_empty());
    for slot in out.iter_mut() {
        *slot = rng.gen_range(0..n);
    }
}

/// Computes the percentile bootstrap CI from replicate estimates.
///
/// `alpha` is the total tail mass (e.g. `0.05` for a 95% CI). The replicate
/// vector is sorted in place. Returns `None` when no replicates are given or
/// `alpha` is outside `(0, 1)`.
pub fn percentile_ci(replicates: &mut [f64], alpha: f64) -> Option<ConfidenceInterval> {
    if replicates.is_empty() || !(0.0..1.0).contains(&alpha) || alpha <= 0.0 {
        return None;
    }
    replicates.sort_by(f64::total_cmp);
    let lo = quantile_sorted(replicates, alpha / 2.0)?;
    let hi = quantile_sorted(replicates, 1.0 - alpha / 2.0)?;
    Some(ConfidenceInterval { lo, hi, confidence: 1.0 - alpha })
}

/// Runs a generic bootstrap: draws `b` resamples of `data` (with
/// replacement) and applies `statistic` to each resample.
///
/// This is the textbook single-sample bootstrap, used for the uniform
/// sampling baseline; ABae itself uses the stratified variant in
/// `abae-core::bootstrap`.
pub fn bootstrap_estimates<T: Copy, F, R>(
    data: &[T],
    b: usize,
    mut statistic: F,
    rng: &mut R,
) -> Vec<f64>
where
    F: FnMut(&[T]) -> f64,
    R: Rng + ?Sized,
{
    if data.is_empty() {
        return Vec::new();
    }
    let mut resample: Vec<T> = Vec::with_capacity(data.len());
    let mut out = Vec::with_capacity(b);
    for _ in 0..b {
        resample.clear();
        for _ in 0..data.len() {
            resample.push(data[rng.gen_range(0..data.len())]);
        }
        out.push(statistic(&resample));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn interval_accessors() {
        let ci = ConfidenceInterval { lo: 1.0, hi: 3.0, confidence: 0.95 };
        assert_eq!(ci.width(), 2.0);
        assert!(ci.contains(2.0));
        assert!(ci.contains(1.0));
        assert!(ci.contains(3.0));
        assert!(!ci.contains(0.99));
        assert!(!ci.contains(3.01));
    }

    #[test]
    fn resample_indices_in_range_and_right_length() {
        let mut r = rng();
        let idx = resample_indices(17, &mut r);
        assert_eq!(idx.len(), 17);
        assert!(idx.iter().all(|&i| i < 17));
        assert!(resample_indices(0, &mut r).is_empty());
    }

    #[test]
    fn resample_into_fills_buffer() {
        let mut r = rng();
        let mut buf = vec![usize::MAX; 25];
        resample_indices_into(10, &mut buf, &mut r);
        assert!(buf.iter().all(|&i| i < 10));
    }

    #[test]
    fn percentile_ci_of_known_replicates() {
        // Replicates 0..=100: 95% percentile interval is [2.5, 97.5].
        let mut reps: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let ci = percentile_ci(&mut reps, 0.05).unwrap();
        assert!((ci.lo - 2.5).abs() < 1e-9);
        assert!((ci.hi - 97.5).abs() < 1e-9);
        assert_eq!(ci.confidence, 0.95);
    }

    #[test]
    fn percentile_ci_rejects_degenerate_inputs() {
        assert!(percentile_ci(&mut [], 0.05).is_none());
        assert!(percentile_ci(&mut [1.0], 0.0).is_none());
        assert!(percentile_ci(&mut [1.0], 1.0).is_none());
        assert!(percentile_ci(&mut [1.0], -0.1).is_none());
    }

    #[test]
    fn bootstrap_mean_ci_covers_truth_for_normal_data() {
        // Coverage check: bootstrap CI for the mean of N(5, 1) data should
        // contain 5 in roughly 95% of trials.
        let mut r = rng();
        let norm = crate::dist::Normal::new(5.0, 1.0).unwrap();
        use rand::distributions::Distribution;
        let mut covered = 0;
        let trials = 200;
        for _ in 0..trials {
            let data: Vec<f64> = (0..80).map(|_| norm.sample(&mut r)).collect();
            let mut reps = bootstrap_estimates(
                &data,
                400,
                |s| s.iter().sum::<f64>() / s.len() as f64,
                &mut r,
            );
            let ci = percentile_ci(&mut reps, 0.05).unwrap();
            if ci.contains(5.0) {
                covered += 1;
            }
        }
        let cov = covered as f64 / trials as f64;
        assert!(cov > 0.85, "coverage {cov} too low");
    }

    #[test]
    fn bootstrap_of_empty_data_is_empty() {
        let mut r = rng();
        let reps = bootstrap_estimates(&[] as &[f64], 10, |_| 0.0, &mut r);
        assert!(reps.is_empty());
    }

    #[test]
    fn bootstrap_of_constant_data_is_constant() {
        let mut r = rng();
        let data = [3.0; 40];
        let mut reps =
            bootstrap_estimates(&data, 100, |s| s.iter().sum::<f64>() / s.len() as f64, &mut r);
        let ci = percentile_ci(&mut reps, 0.05).unwrap();
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
        assert_eq!(ci.width(), 0.0);
    }

    proptest! {
        #[test]
        fn ci_endpoints_are_ordered(
            mut reps in proptest::collection::vec(-1e6f64..1e6, 1..200),
            alpha in 0.01f64..0.5,
        ) {
            let ci = percentile_ci(&mut reps, alpha).unwrap();
            prop_assert!(ci.lo <= ci.hi);
        }

        #[test]
        fn narrower_alpha_gives_wider_interval(
            mut reps in proptest::collection::vec(-1e3f64..1e3, 10..200),
        ) {
            let mut reps2 = reps.clone();
            let wide = percentile_ci(&mut reps, 0.01).unwrap();
            let narrow = percentile_ci(&mut reps2, 0.20).unwrap();
            prop_assert!(wide.width() >= narrow.width() - 1e-9);
        }
    }
}
