//! Random variate generation built from scratch on top of a uniform source.
//!
//! The ABae evaluation needs Normal, LogNormal, Beta, Gamma, Bernoulli,
//! Binomial, Poisson, categorical, and heavy-tailed variates to emulate the
//! paper's datasets (car counts, ratings, link counts, proxy scores drawn
//! from Beta distributions, ...). The `rand` crate only ships uniform
//! sampling, so every sampler here is implemented directly:
//!
//! * Normal — Marsaglia polar method.
//! * Gamma — Marsaglia–Tsang squeeze (with the `U^{1/α}` boost for `α < 1`).
//! * Beta — ratio of Gammas.
//! * Binomial — exact Bernoulli summation for small `n`, inversion for small
//!   `n·p`, Gaussian approximation with continuity correction otherwise.
//! * Poisson — Knuth multiplication for `λ < 30`, Gaussian approximation
//!   otherwise.
//! * Categorical — Walker/Vose alias method (O(1) per draw).
//! * Pareto — inverse CDF.
//!
//! All samplers implement [`rand::distributions::Distribution`] so they
//! compose with `Rng::sample` and iterator adapters.

use rand::distributions::Distribution;
use rand::Rng;

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError {
    what: &'static str,
}

impl ParamError {
    fn new(what: &'static str) -> Self {
        Self { what }
    }
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

/// Normal (Gaussian) distribution sampled with the Marsaglia polar method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation. `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(ParamError::new("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mean: 0.0, std_dev: 1.0 }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

/// Draws one standard-normal variate via the Marsaglia polar method.
///
/// The second variate of the pair is intentionally discarded so the sampler
/// stays stateless; the extra uniform draws are negligible for our workloads.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution where the *logarithm* of the
    /// variate has mean `mu` and standard deviation `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(Self { norm: Normal::new(mu, sigma)? })
    }

    /// Mean of the log-normal variate itself: `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.norm.mean() + 0.5 * self.norm.std_dev().powi(2)).exp()
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Exponential distribution with rate `lambda`, sampled by inverse CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda <= 0.0 || lambda.is_nan() || !lambda.is_finite() {
            return Err(ParamError::new("Exponential requires lambda > 0"));
        }
        Ok(Self { lambda })
    }
}

impl Distribution<f64> for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - U in (0, 1] avoids ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.lambda
    }
}

/// Gamma distribution with shape `alpha` and scale `theta`.
///
/// Sampling uses the Marsaglia–Tsang (2000) squeeze method for `alpha >= 1`
/// and the boosting identity `Gamma(alpha) = Gamma(alpha + 1) * U^(1/alpha)`
/// for `alpha < 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    alpha: f64,
    theta: f64,
}

impl Gamma {
    /// Creates a gamma distribution with shape `alpha > 0`, scale `theta > 0`.
    pub fn new(alpha: f64, theta: f64) -> Result<Self, ParamError> {
        if alpha.is_nan()
            || theta.is_nan()
            || alpha <= 0.0
            || theta <= 0.0
            || !alpha.is_finite()
            || !theta.is_finite()
        {
            return Err(ParamError::new("Gamma requires alpha > 0 and theta > 0"));
        }
        Ok(Self { alpha, theta })
    }

    fn sample_shape_ge_one<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> f64 {
        debug_assert!(alpha >= 1.0);
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen::<f64>();
            // Squeeze step (cheap acceptance), then full log test.
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = if self.alpha >= 1.0 {
            Self::sample_shape_ge_one(self.alpha, rng)
        } else {
            // Boost: if Y ~ Gamma(alpha + 1) and U ~ Uniform(0,1), then
            // Y * U^(1/alpha) ~ Gamma(alpha).
            let y = Self::sample_shape_ge_one(self.alpha + 1.0, rng);
            let u: f64 = 1.0 - rng.gen::<f64>();
            y * u.powf(1.0 / self.alpha)
        };
        z * self.theta
    }
}

/// Beta distribution on `[0, 1]`, sampled as a ratio of Gamma variates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    a: Gamma,
    b: Gamma,
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Creates a Beta distribution with shape parameters `alpha, beta > 0`.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, ParamError> {
        Ok(Self {
            a: Gamma::new(alpha, 1.0)?,
            b: Gamma::new(beta, 1.0)?,
            alpha,
            beta,
        })
    }

    /// Mean of the distribution, `alpha / (alpha + beta)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }
}

impl Distribution<f64> for Beta {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = self.a.sample(rng);
        let y = self.b.sample(rng);
        if x + y == 0.0 {
            // Both gammas underflowed (possible for tiny shapes); fall back
            // to the mean rather than producing NaN.
            return self.mean();
        }
        x / (x + y)
    }
}

/// Bernoulli distribution returning `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution; `p` must lie in `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ParamError::new("Bernoulli requires p in [0, 1]"));
        }
        Ok(Self { p })
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.p
    }
}

/// Binomial distribution `Bin(n, p)`.
///
/// Three regimes, chosen for exactness where the ABae workloads live (small
/// `n` or small `n·p`) and documented approximation elsewhere:
/// * `n <= 64`: sum of Bernoulli trials (exact).
/// * `n·p <= 40` (or `n·(1-p) <= 40`, by symmetry): CDF inversion (exact).
/// * otherwise: Gaussian approximation with continuity correction, clamped
///   to `[0, n]` (error negligible at that scale for our uses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution with `n` trials and success
    /// probability `p in [0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, ParamError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ParamError::new("Binomial requires p in [0, 1]"));
        }
        Ok(Self { n, p })
    }

    fn sample_inversion<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
        // Walk the CDF from k = 0. Only used when n*p is small, so the
        // expected number of steps is small.
        let q = 1.0 - p;
        let mut pk = q.powi(n as i32); // P(X = 0)
        let mut cdf = pk;
        let u: f64 = rng.gen::<f64>();
        let mut k: u64 = 0;
        while u > cdf && k < n {
            // p_{k+1} = p_k * (n - k) / (k + 1) * p / q
            pk *= (n - k) as f64 / (k + 1) as f64 * p / q;
            k += 1;
            cdf += pk;
            if pk <= f64::MIN_POSITIVE {
                break;
            }
        }
        k
    }
}

impl Distribution<u64> for Binomial {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let (n, p) = (self.n, self.p);
        if p == 0.0 || n == 0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        if n <= 64 {
            let mut count = 0;
            for _ in 0..n {
                if rng.gen::<f64>() < p {
                    count += 1;
                }
            }
            return count;
        }
        // Exploit symmetry so inversion walks the short side.
        let flipped = p > 0.5;
        let ps = if flipped { 1.0 - p } else { p };
        let mean = n as f64 * ps;
        let k = if mean <= 40.0 {
            Self::sample_inversion(n, ps, rng)
        } else {
            let sd = (n as f64 * ps * (1.0 - ps)).sqrt();
            let z = standard_normal(rng);
            let x = (mean + sd * z + 0.5).floor();
            x.clamp(0.0, n as f64) as u64
        };
        if flipped {
            n - k
        } else {
            k
        }
    }
}

/// Poisson distribution with mean `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda <= 0.0 || lambda.is_nan() || !lambda.is_finite() {
            return Err(ParamError::new("Poisson requires lambda > 0"));
        }
        Ok(Self { lambda })
    }
}

impl Distribution<u64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            // Knuth's multiplication method (exact).
            let l = (-self.lambda).exp();
            let mut k: u64 = 0;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        }
        // Gaussian approximation with continuity correction for large lambda.
        let z = standard_normal(rng);
        let x = (self.lambda + self.lambda.sqrt() * z + 0.5).floor();
        x.max(0.0) as u64
    }
}

/// Categorical distribution over `0..k` sampled with the Walker/Vose alias
/// method: O(k) setup, O(1) per draw.
///
/// Used for discrete statistic distributions in the dataset emulators (e.g.
/// 1–5 star ratings).
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Categorical {
    /// Builds the alias table from non-negative weights (not necessarily
    /// normalized). At least one weight must be positive.
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("Categorical requires at least one weight"));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ParamError::new("Categorical weights must be finite and >= 0"));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ParamError::new("Categorical requires a positive total weight"));
        }
        let k = weights.len();
        // Scaled probabilities; alias construction per Vose (1991).
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * k as f64 / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = vec![1.0; k];
        let mut alias = vec![0usize; k];
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining entries (numerical leftovers) get probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Ok(Self { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when there are no categories (never constructed; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

impl Distribution<usize> for Categorical {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let k = self.prob.len();
        let i = rng.gen_range(0..k);
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Pareto (Type I) distribution with scale `x_min > 0` and shape `alpha > 0`,
/// sampled by inverse CDF. Used for heavy-tailed statistics (e.g. link
/// counts in spam emails).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with minimum value `x_min > 0` and tail
    /// index `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, ParamError> {
        if x_min.is_nan() || alpha.is_nan() || x_min <= 0.0 || alpha <= 0.0 {
            return Err(ParamError::new("Pareto requires x_min > 0 and alpha > 0"));
        }
        Ok(Self { x_min, alpha })
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xAB_AE)
    }

    fn sample_mean_var<D: Distribution<f64>>(d: &D, n: usize) -> (f64, f64) {
        let mut r = rng();
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for i in 0..n {
            let x = d.sample(&mut r);
            let delta = x - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (x - mean);
        }
        (mean, m2 / (n - 1) as f64)
    }

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let (m, v) = sample_mean_var(&d, 200_000);
        assert!((m - 3.0).abs() < 0.03, "mean {m}");
        assert!((v - 4.0).abs() < 0.1, "var {v}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normal_zero_std_dev_is_constant() {
        let d = Normal::new(5.0, 0.0).unwrap();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 5.0);
        }
    }

    #[test]
    fn lognormal_mean_matches_formula() {
        let d = LogNormal::new(0.5, 0.4).unwrap();
        let (m, _) = sample_mean_var(&d, 300_000);
        assert!((m - d.mean()).abs() / d.mean() < 0.02, "mean {m} vs {}", d.mean());
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(2.5).unwrap();
        let (m, v) = sample_mean_var(&d, 200_000);
        assert!((m - 0.4).abs() < 0.01, "mean {m}");
        assert!((v - 0.16).abs() < 0.01, "var {v}");
    }

    #[test]
    fn gamma_moments_large_shape() {
        let d = Gamma::new(4.0, 0.5).unwrap();
        let (m, v) = sample_mean_var(&d, 200_000);
        assert!((m - 2.0).abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "var {v}");
    }

    #[test]
    fn gamma_moments_small_shape() {
        let d = Gamma::new(0.5, 2.0).unwrap();
        let (m, v) = sample_mean_var(&d, 300_000);
        assert!((m - 1.0).abs() < 0.03, "mean {m}");
        assert!((v - 2.0).abs() < 0.15, "var {v}");
    }

    #[test]
    fn beta_moments() {
        let d = Beta::new(2.0, 6.0).unwrap();
        let (m, v) = sample_mean_var(&d, 200_000);
        let expect_m = 0.25;
        let expect_v = 2.0 * 6.0 / (8.0f64.powi(2) * 9.0);
        assert!((m - expect_m).abs() < 0.005, "mean {m}");
        assert!((v - expect_v).abs() < 0.005, "var {v}");
    }

    #[test]
    fn beta_stays_in_unit_interval() {
        let d = Beta::new(0.3, 0.3).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((0.0..=1.0).contains(&x), "sample {x} out of range");
        }
    }

    #[test]
    fn bernoulli_rate() {
        let d = Bernoulli::new(0.3).unwrap();
        let mut r = rng();
        let hits = (0..100_000).filter(|_| d.sample(&mut r)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!(!Bernoulli::new(0.0).unwrap().sample(&mut r));
        assert!(Bernoulli::new(1.0).unwrap().sample(&mut r));
        assert!(Bernoulli::new(1.5).is_err());
        assert!(Bernoulli::new(-0.1).is_err());
    }

    #[test]
    fn binomial_small_n_exact_regime() {
        let d = Binomial::new(20, 0.4).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let x = d.sample(&mut r);
            assert!(x <= 20);
            sum += x;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn binomial_inversion_regime() {
        // n large, n*p small: exercises the CDF walk.
        let d = Binomial::new(10_000, 0.001).unwrap();
        let mut r = rng();
        let n = 50_000;
        let mut sum = 0u64;
        for _ in 0..n {
            sum += d.sample(&mut r);
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn binomial_gaussian_regime() {
        let d = Binomial::new(1_000_000, 0.5).unwrap();
        let mut r = rng();
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut r);
            assert!(x <= 1_000_000);
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 500_000.0).abs() < 200.0, "mean {mean}");
    }

    #[test]
    fn binomial_symmetry_flip() {
        // High p goes through the flipped path; the mean must still match.
        let d = Binomial::new(5_000, 0.999).unwrap();
        let mut r = rng();
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            sum += d.sample(&mut r);
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 4995.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn binomial_degenerate() {
        let mut r = rng();
        assert_eq!(Binomial::new(10, 0.0).unwrap().sample(&mut r), 0);
        assert_eq!(Binomial::new(10, 1.0).unwrap().sample(&mut r), 10);
        assert_eq!(Binomial::new(0, 0.5).unwrap().sample(&mut r), 0);
    }

    #[test]
    fn poisson_small_lambda() {
        let d = Poisson::new(3.5).unwrap();
        let (m, v) = {
            let mut r = rng();
            let n = 200_000;
            let mut mean = 0.0;
            let mut m2 = 0.0;
            for i in 0..n {
                let x = d.sample(&mut r) as f64;
                let delta = x - mean;
                mean += delta / (i + 1) as f64;
                m2 += delta * (x - mean);
            }
            (mean, m2 / (n - 1) as f64)
        };
        assert!((m - 3.5).abs() < 0.03, "mean {m}");
        assert!((v - 3.5).abs() < 0.1, "var {v}");
    }

    #[test]
    fn poisson_large_lambda_approx() {
        let d = Poisson::new(400.0).unwrap();
        let mut r = rng();
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += d.sample(&mut r) as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 400.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let d = Categorical::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut r = rng();
        let n = 400_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = (i + 1) as f64 / 10.0;
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.005, "category {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn categorical_zero_weight_never_sampled() {
        let d = Categorical::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            assert_eq!(d.sample(&mut r), 1);
        }
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[-1.0, 2.0]).is_err());
        assert!(Categorical::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn pareto_minimum_respected() {
        let d = Pareto::new(2.0, 3.0).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 2.0);
        }
    }

    #[test]
    fn pareto_mean_matches_formula() {
        // Mean = alpha * x_min / (alpha - 1) for alpha > 1.
        let d = Pareto::new(1.0, 4.0).unwrap();
        let (m, _) = sample_mean_var(&d, 300_000);
        let expect = 4.0 / 3.0;
        assert!((m - expect).abs() < 0.02, "mean {m} vs {expect}");
    }
}
