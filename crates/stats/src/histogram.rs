//! Fixed-width histograms for diagnostics.
//!
//! Used in tests to sanity-check the dataset emulators (distribution of
//! statistics, proxy-score shapes) and in the experiment harness to report
//! proxy-score spread per stratum.

/// A histogram over `[lo, hi)` with equal-width bins plus underflow/overflow
/// counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width buckets.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` — these are programming errors,
    /// not data errors.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0, count: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Records every value in the iterator.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Raw bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fraction of in-range mass in each bin; all zeros when nothing in
    /// range.
    pub fn densities(&self) -> Vec<f64> {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&b| b as f64 / in_range as f64).collect()
    }

    /// Renders a compact ASCII sparkline of bin densities (for harness
    /// output).
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let dens = self.densities();
        let max = dens.iter().cloned().fold(0.0f64, f64::max);
        if max == 0.0 {
            return LEVELS[0].to_string().repeat(self.bins.len());
        }
        dens.iter()
            .map(|&d| {
                let lvl = ((d / max) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[lvl]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record_all([0.5, 1.5, 1.6, 9.9]);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins().iter().sum::<u64>(), 0);
    }

    #[test]
    fn boundary_values() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(0.0); // inclusive lo → bin 0
        h.record(0.5); // second bin
        assert_eq!(h.bins(), &[1, 1]);
    }

    #[test]
    fn densities_normalize_in_range_mass() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record_all([0.1, 0.2, 0.7, 5.0]);
        let d = h.densities();
        assert!((d[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((d[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_densities_are_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.densities(), vec![0.0, 0.0, 0.0]);
        assert_eq!(h.sparkline().chars().count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn sparkline_peaks_at_mode() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.record_all([0.5, 1.5, 1.6, 1.7, 2.5]);
        let spark: Vec<char> = h.sparkline().chars().collect();
        assert_eq!(spark[1], '█');
    }
}
