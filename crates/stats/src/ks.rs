//! One-sample Kolmogorov–Smirnov goodness-of-fit test.
//!
//! Used by this workspace's own test suites to validate the from-scratch
//! distribution samplers ([`crate::dist`]) against their theoretical CDFs —
//! a much sharper check than comparing moments — and available to users
//! validating emulated datasets against target distributions.

/// The KS statistic `D_n = sup_x |F_n(x) − F(x)|` of a sample against a
/// reference CDF. Returns `None` for an empty sample.
pub fn ks_statistic<F>(sample: &mut [f64], cdf: F) -> Option<f64>
where
    F: Fn(f64) -> f64,
{
    if sample.is_empty() {
        return None;
    }
    sample.sort_by(f64::total_cmp);
    let n = sample.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sample.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let above = (i as f64 + 1.0) / n - f;
        let below = f - i as f64 / n;
        d = d.max(above).max(below);
    }
    Some(d)
}

/// Asymptotic p-value of the KS statistic via the Kolmogorov distribution
/// series `Q(λ) = 2 Σ (−1)^{j−1} e^{−2 j² λ²}` with the Stephens
/// small-sample correction. Accurate enough for hypothesis checks at
/// conventional levels with `n ≥ 35`.
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Convenience: true when the sample is *consistent* with the reference CDF
/// at significance level `alpha` (i.e. the test fails to reject).
pub fn ks_test<F>(sample: &mut [f64], cdf: F, alpha: f64) -> bool
where
    F: Fn(f64) -> f64,
{
    match ks_statistic(sample, cdf) {
        Some(d) => ks_p_value(d, sample.len()) > alpha,
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Normal};
    use crate::special::normal_cdf;
    use rand::distributions::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_sample_passes_uniform_cdf() {
        let mut rng = StdRng::seed_from_u64(1);
        use rand::Rng;
        let mut sample: Vec<f64> = (0..5000).map(|_| rng.gen::<f64>()).collect();
        assert!(ks_test(&mut sample, |x| x.clamp(0.0, 1.0), 0.01));
    }

    #[test]
    fn normal_sampler_matches_normal_cdf() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut sample: Vec<f64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        assert!(ks_test(&mut sample, |x| normal_cdf((x - 3.0) / 2.0), 0.01));
    }

    #[test]
    fn exponential_sampler_matches_exponential_cdf() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Exponential::new(1.5).unwrap();
        let mut sample: Vec<f64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        assert!(ks_test(&mut sample, |x| 1.0 - (-1.5 * x.max(0.0)).exp(), 0.01));
    }

    #[test]
    fn wrong_distribution_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Normal::new(0.5, 0.3).unwrap();
        let mut sample: Vec<f64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        // Claim it is uniform: should reject decisively.
        assert!(!ks_test(&mut sample, |x| x.clamp(0.0, 1.0), 0.01));
    }

    #[test]
    fn empty_sample_is_vacuously_consistent() {
        assert!(ks_test(&mut [], |x| x, 0.05));
        assert_eq!(ks_statistic(&mut [], |x| x), None);
    }

    #[test]
    fn p_value_is_monotone_in_d() {
        let p1 = ks_p_value(0.01, 1000);
        let p2 = ks_p_value(0.05, 1000);
        let p3 = ks_p_value(0.10, 1000);
        assert!(p1 > p2 && p2 > p3);
        assert!(p1 <= 1.0 && p3 >= 0.0);
    }

    #[test]
    fn known_statistic_hand_check() {
        // Sample {0.5}: F_n jumps 0→1 at 0.5 against uniform CDF:
        // D = max(1 - 0.5, 0.5 - 0) = 0.5.
        let mut sample = [0.5];
        let d = ks_statistic(&mut sample, |x| x).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
    }
}
