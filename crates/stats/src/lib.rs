//! Statistics substrate for the ABae reproduction.
//!
//! The ABae paper relies on a standard scientific-computing stack
//! (NumPy/SciPy) for random variates, summary statistics, bootstrap
//! confidence intervals, and evaluation metrics. This crate rebuilds that
//! substrate from scratch on top of [`rand`]:
//!
//! * [`dist`] — random variate generation (Normal, LogNormal, Exponential,
//!   Gamma, Beta, Bernoulli, Binomial, Poisson, alias-method categorical,
//!   Pareto) implementing [`rand::distributions::Distribution`].
//! * [`moments`] — numerically stable streaming moments (Welford) with merge
//!   support, plus batch helpers.
//! * [`quantile`] — type-7 (linear interpolation) quantiles and percentile
//!   helpers used by the bootstrap.
//! * [`bootstrap`] — nonparametric bootstrap resampling and percentile
//!   confidence intervals (the machinery behind the paper's Algorithm 2).
//! * [`metrics`] — the paper's evaluation metrics: RMSE, normalized Q-error
//!   (Figure 4), relative error, and CI coverage/width (Figure 5).
//! * [`histogram`] — fixed-width histograms for diagnostics and tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod dist;
pub mod histogram;
pub mod ks;
pub mod metrics;
pub mod moments;
pub mod quantile;
pub mod special;

pub use bootstrap::{bootstrap_estimates, percentile_ci, resample_indices, ConfidenceInterval};
pub use dist::{
    Bernoulli, Beta, Binomial, Categorical, Exponential, Gamma, LogNormal, Normal, Pareto, Poisson,
};
pub use ks::{ks_p_value, ks_statistic, ks_test};
pub use metrics::{coverage, mean_width, normalized_q_error, q_error, relative_error, rmse};
pub use moments::{summarize, StreamingMoments, Summary};
pub use quantile::{quantile_sorted, quantiles_sorted};
pub use special::{erf, normal_cdf, normal_quantile};
