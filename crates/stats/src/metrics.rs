//! Evaluation metrics used by the paper's experiments.
//!
//! * RMSE between estimates and the exact answer (Figures 2, 3, 7–12).
//! * Normalized Q-error `100·(q − 1)` with `q = max(μ̂/μ, μ/μ̂)` (Figure 4,
//!   following Moerkotte et al.'s symmetric relative metric).
//! * Relative error (reported in §5.2 prose).
//! * CI width and empirical coverage (Figure 5 and the nominal-coverage
//!   check).

use crate::bootstrap::ConfidenceInterval;

/// Root-mean-squared error of `estimates` against a scalar ground truth.
///
/// Returns 0 for an empty slice.
pub fn rmse(estimates: &[f64], truth: f64) -> f64 {
    if estimates.is_empty() {
        return 0.0;
    }
    let mse: f64 =
        estimates.iter().map(|e| (e - truth) * (e - truth)).sum::<f64>() / estimates.len() as f64;
    mse.sqrt()
}

/// Mean squared error of `estimates` against a scalar ground truth.
pub fn mse(estimates: &[f64], truth: f64) -> f64 {
    if estimates.is_empty() {
        return 0.0;
    }
    estimates.iter().map(|e| (e - truth) * (e - truth)).sum::<f64>() / estimates.len() as f64
}

/// Q-error of one estimate: `max(est/truth, truth/est)`.
///
/// Both values must be strictly positive for the ratio to be meaningful;
/// non-positive inputs yield `f64::INFINITY` (maximally wrong), matching the
/// cardinality-estimation convention.
pub fn q_error(estimate: f64, truth: f64) -> f64 {
    if estimate <= 0.0 || truth <= 0.0 {
        return f64::INFINITY;
    }
    (estimate / truth).max(truth / estimate)
}

/// Normalized Q-error as plotted in Figure 4: `100 · (q − 1)`, roughly the
/// percent error.
pub fn normalized_q_error(estimate: f64, truth: f64) -> f64 {
    100.0 * (q_error(estimate, truth) - 1.0)
}

/// Relative error `|est − truth| / |truth|`; `infinity` when `truth == 0`.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        return f64::INFINITY;
    }
    (estimate - truth).abs() / truth.abs()
}

/// Fraction of intervals that contain the truth (empirical CI coverage).
///
/// Returns 0 for an empty slice.
pub fn coverage(intervals: &[ConfidenceInterval], truth: f64) -> f64 {
    if intervals.is_empty() {
        return 0.0;
    }
    intervals.iter().filter(|ci| ci.contains(truth)).count() as f64 / intervals.len() as f64
}

/// Mean CI width (the y-axis of Figure 5). Returns 0 for an empty slice.
pub fn mean_width(intervals: &[ConfidenceInterval]) -> f64 {
    if intervals.is_empty() {
        return 0.0;
    }
    intervals.iter().map(ConfidenceInterval::width).sum::<f64>() / intervals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rmse_of_exact_estimates_is_zero() {
        assert_eq!(rmse(&[5.0, 5.0, 5.0], 5.0), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // Errors -1 and +1: MSE = 1, RMSE = 1.
        assert!((rmse(&[4.0, 6.0], 5.0) - 1.0).abs() < 1e-12);
        // Errors 3 and 4: MSE = 12.5.
        assert!((mse(&[8.0, 9.0], 5.0) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn rmse_empty_is_zero() {
        assert_eq!(rmse(&[], 1.0), 0.0);
        assert_eq!(mse(&[], 1.0), 0.0);
    }

    #[test]
    fn q_error_is_symmetric_in_over_and_under_estimation() {
        assert!((q_error(2.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((q_error(0.5, 1.0) - 2.0).abs() < 1e-12);
        assert_eq!(q_error(1.0, 1.0), 1.0);
    }

    #[test]
    fn q_error_degenerate_inputs_are_infinite() {
        assert!(q_error(0.0, 1.0).is_infinite());
        assert!(q_error(1.0, 0.0).is_infinite());
        assert!(q_error(-1.0, 1.0).is_infinite());
    }

    #[test]
    fn normalized_q_error_is_percentish() {
        // 10% overestimate → normalized Q-error 10.
        assert!((normalized_q_error(1.1, 1.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(0.9, 1.0) - 0.1).abs() < 1e-12);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }

    #[test]
    fn coverage_counts_containing_intervals() {
        let cis = vec![
            ConfidenceInterval { lo: 0.0, hi: 2.0, confidence: 0.95 },
            ConfidenceInterval { lo: 1.5, hi: 3.0, confidence: 0.95 },
            ConfidenceInterval { lo: 0.5, hi: 1.5, confidence: 0.95 },
        ];
        assert!((coverage(&cis, 1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(coverage(&[], 1.0), 0.0);
    }

    #[test]
    fn mean_width_averages() {
        let cis = vec![
            ConfidenceInterval { lo: 0.0, hi: 1.0, confidence: 0.95 },
            ConfidenceInterval { lo: 0.0, hi: 3.0, confidence: 0.95 },
        ];
        assert!((mean_width(&cis) - 2.0).abs() < 1e-12);
        assert_eq!(mean_width(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn q_error_at_least_one(est in 1e-6f64..1e6, truth in 1e-6f64..1e6) {
            prop_assert!(q_error(est, truth) >= 1.0);
        }

        #[test]
        fn q_error_symmetry(est in 1e-3f64..1e3, truth in 1e-3f64..1e3) {
            let a = q_error(est, truth);
            let b = q_error(truth, est);
            prop_assert!((a - b).abs() < 1e-9 * a.max(b));
        }

        #[test]
        fn rmse_nonnegative(
            ests in proptest::collection::vec(-1e6f64..1e6, 0..50),
            truth in -1e6f64..1e6,
        ) {
            prop_assert!(rmse(&ests, truth) >= 0.0);
        }
    }
}
