//! Numerically stable streaming moments (Welford's algorithm).
//!
//! ABae's pilot stage computes per-stratum means and sample variances
//! (`μ̂_k`, `σ̂²_k` in Algorithm 1) from the records that satisfy the
//! predicate. [`StreamingMoments`] provides those estimates in one pass with
//! Welford updates, supports merging partial accumulators (Chan et al.) for
//! the parallel trial runner, and [`summarize`] is the batch convenience
//! wrapper.

/// One-pass accumulator for count, mean, variance, min, and max.
///
/// ```
/// use abae_stats::StreamingMoments;
///
/// let mut acc = StreamingMoments::new();
/// acc.extend([2.0, 4.0, 6.0]);
/// assert_eq!(acc.mean(), Some(4.0));
/// assert_eq!(acc.sample_variance(), Some(4.0));
/// assert_eq!(acc.min(), Some(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingMoments {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations, or 0 when empty — matching Algorithm 1's
    /// convention `μ̂_k = 0` when a stratum has no positive samples.
    pub fn mean_or_zero(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Mean of the observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (denominator `n − 1`), or 0 when fewer than
    /// two observations — matching Algorithm 1's convention `σ̂²_k = 0` when
    /// `|X_k| ≤ 1`.
    pub fn sample_variance_or_zero(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Unbiased sample variance, or `None` when fewer than two observations.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count >= 2).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population variance (denominator `n`), or `None` when empty.
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample standard deviation, or 0 when fewer than two observations.
    pub fn sample_std_dev_or_zero(&self) -> f64 {
        self.sample_variance_or_zero().sqrt()
    }

    /// Minimum observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Extend<f64> for StreamingMoments {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Batch summary of a slice of observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 for an empty slice).
    pub mean: f64,
    /// Unbiased sample variance (0 for fewer than two observations).
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum (`+inf` for an empty slice).
    pub min: f64,
    /// Maximum (`-inf` for an empty slice).
    pub max: f64,
}

/// Summarizes a slice in one pass.
pub fn summarize(data: &[f64]) -> Summary {
    let mut acc = StreamingMoments::new();
    acc.extend(data.iter().copied());
    Summary {
        count: data.len(),
        mean: acc.mean_or_zero(),
        variance: acc.sample_variance_or_zero(),
        std_dev: acc.sample_std_dev_or_zero(),
        min: acc.min().unwrap_or(f64::INFINITY),
        max: acc.max().unwrap_or(f64::NEG_INFINITY),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_accumulator_follows_paper_conventions() {
        let acc = StreamingMoments::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean_or_zero(), 0.0);
        assert_eq!(acc.sample_variance_or_zero(), 0.0);
        assert_eq!(acc.mean(), None);
        assert_eq!(acc.sample_variance(), None);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut acc = StreamingMoments::new();
        acc.push(7.0);
        assert_eq!(acc.mean(), Some(7.0));
        assert_eq!(acc.sample_variance_or_zero(), 0.0);
        assert_eq!(acc.population_variance(), Some(0.0));
    }

    #[test]
    fn known_small_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        // Population variance is exactly 4; sample variance is 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut seq = StreamingMoments::new();
        seq.extend(data.iter().copied());

        let (a, b) = data.split_at(313);
        let mut left = StreamingMoments::new();
        left.extend(a.iter().copied());
        let mut right = StreamingMoments::new();
        right.extend(b.iter().copied());
        left.merge(&right);

        assert_eq!(left.count(), seq.count());
        assert!((left.mean().unwrap() - seq.mean().unwrap()).abs() < 1e-10);
        assert!(
            (left.sample_variance().unwrap() - seq.sample_variance().unwrap()).abs() < 1e-8
        );
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut acc = StreamingMoments::new();
        acc.extend([1.0, 2.0, 3.0]);
        let before = acc;
        acc.merge(&StreamingMoments::new());
        assert_eq!(acc, before);

        let mut empty = StreamingMoments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn catastrophic_cancellation_resistance() {
        // Large offset + small variance: naive sum-of-squares would lose all
        // precision here.
        let offset = 1e9;
        let mut acc = StreamingMoments::new();
        for i in 0..1000 {
            acc.push(offset + (i % 2) as f64);
        }
        let v = acc.sample_variance().unwrap();
        assert!((v - 0.25025).abs() < 1e-3, "variance {v}");
    }

    proptest! {
        #[test]
        fn variance_is_never_negative(data in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
            let s = summarize(&data);
            prop_assert!(s.variance >= 0.0);
        }

        #[test]
        fn mean_is_bounded_by_min_max(data in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = summarize(&data);
            prop_assert!(s.mean >= s.min - 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
        }

        #[test]
        fn merge_any_split_matches_sequential(
            data in proptest::collection::vec(-1e3f64..1e3, 2..100),
            split in 0usize..100,
        ) {
            let split = split % data.len();
            let mut seq = StreamingMoments::new();
            seq.extend(data.iter().copied());
            let mut l = StreamingMoments::new();
            l.extend(data[..split].iter().copied());
            let mut r = StreamingMoments::new();
            r.extend(data[split..].iter().copied());
            l.merge(&r);
            prop_assert_eq!(l.count(), seq.count());
            prop_assert!((l.mean_or_zero() - seq.mean_or_zero()).abs() < 1e-7);
            prop_assert!(
                (l.sample_variance_or_zero() - seq.sample_variance_or_zero()).abs() < 1e-5
            );
        }
    }
}
