//! Quantiles with linear interpolation (Hyndman–Fan type 7, NumPy default).
//!
//! Two uses in this reproduction: the bootstrap percentile CI (Algorithm 2's
//! `Percentile(α/2, μ̂)`), and the stratification boundary diagnostics.

/// Returns the `q`-quantile (`q ∈ [0, 1]`) of an **ascending-sorted** slice
/// using linear interpolation between order statistics.
///
/// Returns `None` for an empty slice. `q` outside `[0, 1]` is clamped.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "quantile_sorted requires ascending input"
    );
    let q = q.clamp(0.0, 1.0);
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Returns several quantiles of an ascending-sorted slice at once.
pub fn quantiles_sorted(sorted: &[f64], qs: &[f64]) -> Vec<Option<f64>> {
    qs.iter().map(|&q| quantile_sorted(sorted, q)).collect()
}

/// Sorts a copy of `data` and returns the `q`-quantile. Non-finite values are
/// ordered with `f64::total_cmp`.
pub fn quantile_unsorted(data: &[f64], q: f64) -> Option<f64> {
    let mut copy = data.to_vec();
    copy.sort_by(f64::total_cmp);
    quantile_sorted(&copy, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_returns_none() {
        assert_eq!(quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile_sorted(&[42.0], 0.0), Some(42.0));
        assert_eq!(quantile_sorted(&[42.0], 0.5), Some(42.0));
        assert_eq!(quantile_sorted(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn median_of_even_length_interpolates() {
        assert_eq!(quantile_sorted(&[1.0, 2.0, 3.0, 4.0], 0.5), Some(2.5));
    }

    #[test]
    fn endpoints_are_min_and_max() {
        let data = [1.0, 5.0, 9.0, 10.0];
        assert_eq!(quantile_sorted(&data, 0.0), Some(1.0));
        assert_eq!(quantile_sorted(&data, 1.0), Some(10.0));
    }

    #[test]
    fn matches_numpy_type7_reference() {
        // numpy.quantile([10, 20, 30, 40, 50], 0.3) == 22.0
        let data = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert!((quantile_sorted(&data, 0.3).unwrap() - 22.0).abs() < 1e-12);
        // numpy.quantile(..., 0.025) == 11.0
        assert!((quantile_sorted(&data, 0.025).unwrap() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_q_is_clamped() {
        let data = [1.0, 2.0, 3.0];
        assert_eq!(quantile_sorted(&data, -0.5), Some(1.0));
        assert_eq!(quantile_sorted(&data, 1.5), Some(3.0));
    }

    #[test]
    fn multiple_quantiles() {
        let data = [0.0, 1.0, 2.0, 3.0, 4.0];
        let qs = quantiles_sorted(&data, &[0.0, 0.25, 0.5, 0.75, 1.0]);
        let got: Vec<f64> = qs.into_iter().map(Option::unwrap).collect();
        assert_eq!(got, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn unsorted_helper_sorts_first() {
        assert_eq!(quantile_unsorted(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
    }

    proptest! {
        #[test]
        fn quantile_lies_within_range(
            mut data in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q in 0.0f64..1.0,
        ) {
            data.sort_by(f64::total_cmp);
            let v = quantile_sorted(&data, q).unwrap();
            prop_assert!(v >= data[0] - 1e-9);
            prop_assert!(v <= data[data.len() - 1] + 1e-9);
        }

        #[test]
        fn quantile_is_monotone_in_q(
            mut data in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            data.sort_by(f64::total_cmp);
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let a = quantile_sorted(&data, lo).unwrap();
            let b = quantile_sorted(&data, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
        }
    }
}
