//! Special functions: error function and the standard normal CDF/quantile.
//!
//! Needed by the closed-form (CLT) confidence intervals in `abae-core`
//! (the alternative to Algorithm 2's bootstrap) and by the
//! Kolmogorov–Smirnov checks that validate the distribution samplers.

/// Error function `erf(x)`, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (absolute error < 1.5e-7, ample for CI z-scores).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal quantile `Φ⁻¹(p)` via Acklam's rational approximation
/// (relative error < 1.15e-9). Returns ±∞ at p ∈ {0, 1} and NaN outside.
pub fn normal_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // erf(0) = 0, erf(1) ≈ 0.8427007929, erf(2) ≈ 0.9953222650.
        // The A&S 7.1.26 approximation carries ~1e-9 absolute error at 0.
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_265_0).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_792_9).abs() < 2e-7);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-1.959_963_985) - 0.025).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-6, "p = {p}, z = {z}");
        }
    }

    #[test]
    fn quantile_reference_values() {
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.841_344_746) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(-0.1).is_nan());
        assert!(normal_quantile(1.1).is_nan());
        assert!(normal_quantile(f64::NAN).is_nan());
    }

    #[test]
    fn quantile_is_monotone() {
        let mut last = f64::NEG_INFINITY;
        for i in 1..100 {
            let z = normal_quantile(i as f64 / 100.0);
            assert!(z > last);
            last = z;
        }
    }
}
