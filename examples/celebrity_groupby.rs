//! The paper's group-by scenario (§5.2): the fraction of smiling
//! celebrities *per hair color* where the hair color is decided by an
//! expensive oracle — executed through the SQL frontend, then compared
//! against the Equal and Uniform allocations via the core API.
//!
//! ```sh
//! cargo run --release --example celebrity_groupby
//! ```

use abae::core::groupby::{
    groupby_single_oracle, groupby_uniform_single, GroupAllocation, GroupByConfig,
};
use abae::data::emulators::{celeba_groupby, EmulatorOptions};
use abae::data::SingleGroupOracle;
use abae::query::Engine;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let images = celeba_groupby(&EmulatorOptions { scale: 0.25, seed: 13 });
    let exact: Vec<(String, f64)> = images
        .group_key()
        .expect("grouped table")
        .names()
        .iter()
        .enumerate()
        .map(|(g, name)| {
            (name.clone(), images.exact_group_avg(g as u16).expect("group exists"))
        })
        .collect();

    // SQL path through the engine: tables and bindings are frozen at
    // build, the session supplies the deterministic RNG stream.
    let engine = Engine::builder()
        .table(images.clone())
        .bind_predicate("celeba-groupby", "HAIR_COLOR=gray", "is_gray")
        .bind_predicate("celeba-groupby", "HAIR_COLOR=blond", "is_blond")
        .seed(4)
        .build();
    let mut rng = StdRng::seed_from_u64(4);
    // The celeba emulator stores `is_smiling` on the 0/100 scale, so AVG
    // already reports percent (PERCENTAGE is for 0/1 indicators — it
    // always multiplies by 100).
    let result = engine
        .session()
        .execute(
            "SELECT AVG(is_smiling(image)), person FROM celeba-groupby \
             WHERE HAIR_COLOR(image) = 'gray' OR HAIR_COLOR(image) = 'blond' \
             GROUP BY HAIR_COLOR(image) \
             ORACLE LIMIT 6000 WITH PROBABILITY 0.95",
        )
        .expect("query executes");

    println!("SELECT AVG(is_smiling) ... GROUP BY HAIR_COLOR  (budget 6,000):");
    for row in result.groups.expect("group-by query") {
        let truth = exact.iter().find(|(n, _)| *n == row.name).expect("group").1;
        let ci = row
            .ci
            .map(|ci| format!("95% CI [{:.2}, {:.2}]", ci.lo, ci.hi))
            .unwrap_or_default();
        println!(
            "  {:<6} estimate {:>6.2}%   exact {:>6.2}%   |err| {:.2}   {ci}",
            row.name,
            row.estimate,
            truth,
            (row.estimate - truth).abs()
        );
    }
    println!("  oracle calls: {}", result.oracle_calls);

    // Core API: Minimax vs Equal vs Uniform on the worst group.
    let proxies: Vec<&[f64]> =
        images.predicates().iter().map(|p| p.proxy()).collect();
    for (label, alloc) in
        [("Minimax", Some(GroupAllocation::Minimax)), ("Equal", Some(GroupAllocation::Equal)), ("Uniform", None)]
    {
        let oracle = SingleGroupOracle::new(&images).expect("grouped table");
        let ests = match alloc {
            Some(a) => {
                let cfg = GroupByConfig { budget: 6000, allocation: a, ..Default::default() };
                groupby_single_oracle(&proxies, &oracle, &cfg, &mut rng).expect("valid config")
            }
            None => groupby_uniform_single(images.len(), &oracle, 6000, &mut rng),
        };
        let worst = ests
            .iter()
            .map(|e| (e.estimate - exact[e.group as usize].1).abs())
            .fold(0.0f64, f64::max);
        println!("  {label:<8} worst-group |err| = {worst:.2}");
    }
}
