//! Quickstart: answer an aggregation query with an expensive predicate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! We build a small dataset where the "oracle" is expensive (imagine a DNN
//! or a human labeler), attach a cheap proxy score per record, and ask
//! ABae for the average statistic over matching records — with a 95% CI —
//! under a budget of 2,000 oracle calls.

use abae::core::config::AbaeConfig;
use abae::core::pipeline::ExecOptions;
use abae::core::{run_abae_with_ci, Aggregate};
use abae::data::{PredicateOracle, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn main() {
    // 1. A dataset of 100k records. Ground truth lives in the table, but
    //    ABae only sees it through the budget-charging oracle.
    let n = 100_000;
    let mut rng = StdRng::seed_from_u64(7);
    let mut labels = Vec::with_capacity(n);
    let mut proxy = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let propensity: f64 = rng.gen::<f64>().powi(2); // rare-ish predicate
        labels.push(rng.gen::<f64>() < propensity);
        proxy.push((propensity + rng.gen_range(-0.1..0.1)).clamp(0.0, 1.0));
        values.push(5.0 + 10.0 * propensity + rng.gen_range(-1.0..1.0));
    }
    let table = Table::builder("events", values)
        .predicate("matches", labels, proxy)
        .build()
        .expect("valid table");

    let exact = table.exact_avg("matches").expect("predicate exists");
    println!("exact answer (hidden from the algorithm): {exact:.4}");

    // 2. Run ABae with the paper's defaults: K = 5 strata, half the budget
    //    in the pilot stage, bootstrap CI. A real oracle is a batched DNN,
    //    so we simulate 50µs of inference per invocation and let the
    //    labeling pipeline fan batches across 4 threads — the estimate is
    //    bit-identical to a single-threaded run, just faster.
    let oracle = PredicateOracle::new(&table, "matches")
        .expect("predicate exists")
        .with_latency(Duration::from_micros(50));
    let config = AbaeConfig {
        budget: 2000,
        exec: ExecOptions::new(4, 32),
        ..Default::default()
    };
    let scores = table.predicate("matches").expect("predicate exists").proxy();
    let result = run_abae_with_ci(scores, &oracle, &config, Aggregate::Avg, &mut rng)
        .expect("valid configuration");

    let ci = result.ci.expect("bootstrap CI");
    println!(
        "ABae estimate: {:.4}  (95% CI [{:.4}, {:.4}], width {:.4})",
        result.estimate,
        ci.lo,
        ci.hi,
        ci.width()
    );
    println!("oracle calls spent: {} / 2000", result.oracle_calls);
    println!("absolute error: {:.4}", (result.estimate - exact).abs());
    assert!(result.oracle_calls <= 2000);
}
