//! The trec05p scenario (§5.1): average number of links in *spam* emails,
//! with rule-based keyword proxies — including the §3.4 workflow of
//! *selecting* among candidate proxies and *combining* them with logistic
//! regression.
//!
//! ```sh
//! cargo run --release --example spam_emails
//! ```

use abae::core::config::{AbaeConfig, Aggregate};
use abae::core::proxy_combine::combine_proxies;
use abae::core::proxy_select::{draw_pilot, rank_proxies};
use abae::core::two_stage::run_abae;
use abae::data::emulators::{trec05p, EmulatorOptions};
use abae::data::PredicateOracle;
use abae::ml::metrics::auc;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let emails = trec05p(&EmulatorOptions { scale: 1.0, seed: 3 });
    let exact = emails.exact_avg("is_spam").expect("predicate exists");
    println!(
        "corpus: {} emails, {:.1}% spam, exact AVG(NB_LINKS | spam) = {:.3}",
        emails.len(),
        100.0 * emails.positive_rate("is_spam").expect("predicate exists"),
        exact
    );

    // Three candidate keyword proxies of varying quality.
    let candidates: Vec<&[f64]> =
        emails.predicates().iter().map(|p| p.proxy()).collect();
    for p in emails.predicates() {
        println!(
            "  proxy {:<14} AUC = {:.3}",
            p.name(),
            auc(p.proxy(), &p.labels_vec()).expect("both classes present")
        );
    }

    // §3.4: one shared pilot ranks candidates by predicted optimal MSE …
    let oracle = PredicateOracle::new(&emails, "is_spam").expect("predicate exists");
    let mut rng = StdRng::seed_from_u64(17);
    let pilot = draw_pilot(emails.len(), &oracle, 1000, &mut rng);
    let ranking = rank_proxies(&candidates, &pilot, 5, 4000);
    let best = ranking.best();
    println!(
        "selected proxy: {} (predicted MSE {:.5})",
        emails.predicates()[best].name(),
        ranking.predicted_mse[best]
    );

    // … and the same pilot trains a logistic combination of all three.
    let combined = combine_proxies(&candidates, &pilot).expect("pilot is non-empty");
    let labels = emails.predicates()[0].labels_vec();
    println!("combined proxy AUC = {:.3}", auc(&combined, &labels).expect("both classes"));

    // Run ABae with the combined proxy on the remaining budget.
    let config = AbaeConfig { budget: 3000, ..Default::default() };
    let result =
        run_abae(&combined, &oracle, &config, Aggregate::Avg, &mut rng).expect("valid config");
    println!(
        "ABae estimate with combined proxy: {:.3} (|err| = {:.3}, {} oracle calls + {} pilot)",
        result.estimate,
        (result.estimate - exact).abs(),
        result.oracle_calls,
        pilot.len()
    );
}
