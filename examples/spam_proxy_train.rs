//! In-engine proxy training on the emulated trec05p spam corpus.
//!
//! ```sh
//! cargo run --release --example spam_proxy_train
//! ```
//!
//! The paper's trec05p workload ships a hand-written keyword proxy with
//! the dataset. This example instead makes the *engine* build its proxy:
//! `CREATE PROXY ... USING logistic CALIBRATED` draws a training sample,
//! labels it through the oracle (charging the budget), fits a logistic
//! model over hashed tokens, Platt-calibrates it, scores all ~52K emails
//! in parallel batches, and registers the artifact — after which the
//! Figure-1 query names it with `USING`. The same flow works on any text
//! table with **no precomputed proxy column at all**.
//!
//! For scale, the run compares the trained proxy's CI width against
//! uniform sampling on the same oracle budget — the paper's core claim,
//! reproduced with a proxy the engine trained itself.

use abae::core::config::{Aggregate, BootstrapConfig};
use abae::core::uniform::run_uniform_with_ci;
use abae::data::emulators::{trec05p, EmulatorOptions};
use abae::data::PredicateOracle;
use abae::query::{Engine, StatementOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    eprintln!("generating the emulated trec05p corpus ...");
    let emails = trec05p(&EmulatorOptions { scale: 1.0, seed: 2021 });
    let exact = emails.exact_avg("is_spam").expect("predicate exists");
    let n = emails.len();

    let engine = Engine::builder().table(emails).label_cache(true).seed(7).build();
    let mut session = engine.session();

    // Train, calibrate, and register the proxy — all in-engine.
    let created = session
        .run(
            "CREATE PROXY spamnet ON trec05p(is_spam) \
             USING logistic CALIBRATED TRAIN LIMIT 2,000",
        )
        .expect("training succeeds");
    let proxy = match &created {
        StatementOutcome::ProxyCreated(p) => p,
        other => panic!("unexpected outcome {other:?}"),
    };
    println!("CREATE PROXY spamnet ON trec05p(is_spam) USING logistic CALIBRATED");
    println!("  artifact       : {}", proxy.describe());

    // The planner reports the model provenance before any budget is spent.
    let sql = "SELECT AVG(links) FROM trec05p WHERE is_spam \
               ORACLE LIMIT 5,000 USING spamnet WITH PROBABILITY 0.95";
    println!("\nEXPLAIN {sql}");
    for line in session.explain(sql).expect("plan renders").lines() {
        println!("  {line}");
    }

    // Run the query with the trained proxy.
    let result = session.execute(sql).expect("query executes");
    let ci = result.ci().expect("scalar query carries a CI");
    println!("\n  estimate       : {:.4} links", result.estimate());
    println!("  95% CI         : [{:.4}, {:.4}] (width {:.4})", ci.lo, ci.hi, ci.hi - ci.lo);
    println!("  oracle calls   : {} (+ {} cache hits from training)",
        result.oracle_calls, result.cache_hits);
    println!("  exact (hidden) : {exact:.4}");
    println!("  CI covers truth: {}", ci.contains(exact));

    // Baseline: uniform sampling on the same budget, no proxy at all.
    let emails = trec05p(&EmulatorOptions { scale: 1.0, seed: 2021 });
    let oracle = PredicateOracle::new(&emails, "is_spam").expect("predicate exists");
    let mut rng = StdRng::seed_from_u64(7);
    let uniform = run_uniform_with_ci(
        n,
        &oracle,
        5_000,
        Aggregate::Avg,
        &BootstrapConfig::default(),
        &mut rng,
    );
    let uci = uniform.ci.expect("uniform CI");
    println!("\nuniform baseline @ 5,000 oracle calls");
    println!("  estimate       : {:.4}", uniform.estimate);
    println!("  95% CI         : [{:.4}, {:.4}] (width {:.4})", uci.lo, uci.hi, uci.hi - uci.lo);
    println!(
        "  trained proxy narrows the CI by {:.1}% on the same budget",
        100.0 * (1.0 - (ci.hi - ci.lo) / (uci.hi - uci.lo))
    );
}
