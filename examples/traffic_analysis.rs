//! The paper's §2.2 traffic-analysis scenario: an urban planner computes
//! the average number of cars waiting at a red light — a conjunction of
//! two expensive predicates (an object-detection DNN and a human labeler).
//!
//! ```sh
//! cargo run --release --example traffic_analysis
//! ```
//!
//! Uses the night-street emulator (which carries both `has_car` and
//! `red_light` predicates, conjunction positive rate ≈ 0.17 as in §5.2)
//! and runs ABae-MultiPred directly, comparing against uniform sampling.

use abae::core::config::{AbaeConfig, Aggregate};
use abae::core::multipred::{expression_oracle, run_multipred, PredExpr};
use abae::core::uniform::run_uniform;
use abae::data::emulators::{night_street, EmulatorOptions};
use abae::data::Oracle as _;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let video = night_street(&EmulatorOptions { scale: 0.1, seed: 11 });
    // count_cars(frame) > 0 AND red_light(frame): predicate 0 ∧ predicate 1.
    let expr = PredExpr::and(PredExpr::pred(0), PredExpr::pred(1));

    // Exact answer for reference (full oracle pass — what ABae avoids).
    let full = expression_oracle(&video, &expr).expect("valid expression");
    let mut sum = 0.0;
    let mut matches = 0usize;
    for i in 0..video.len() {
        let l = full.label(i);
        if l.matches {
            sum += l.value;
            matches += 1;
        }
    }
    let exact = sum / matches as f64;
    println!(
        "dataset: {} frames; conjunction positive rate {:.3}; exhaustive cost {} oracle calls",
        video.len(),
        matches as f64 / video.len() as f64,
        video.len()
    );

    let mut rng = StdRng::seed_from_u64(5);
    let config = AbaeConfig { budget: 1000, ..Default::default() };
    let abae = run_multipred(&video, &expr, &config, Aggregate::Avg, &mut rng)
        .expect("valid query");
    let ci = abae.ci.expect("bootstrap CI");

    let uniform_oracle = expression_oracle(&video, &expr).expect("valid expression");
    let uniform = run_uniform(video.len(), &uniform_oracle, 1000, Aggregate::Avg, &mut rng);

    println!("AVG(count_cars) WHERE count_cars > 0 AND red_light, budget 1,000:");
    println!(
        "  ABae-MultiPred: {:.4}  (CI [{:.4}, {:.4}])  |err| = {:.4}",
        abae.estimate,
        ci.lo,
        ci.hi,
        (abae.estimate - exact).abs()
    );
    println!(
        "  Uniform       : {:.4}                          |err| = {:.4}",
        uniform.estimate,
        (uniform.estimate - exact).abs()
    );
    println!("  exact         : {exact:.4}");
}
