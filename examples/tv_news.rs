//! The paper's §2.2 TV-news scenario: a media-studies researcher computes
//! the average viewership of frames showing a presidential candidate,
//! where the predicate requires an expensive face-detection DNN.
//!
//! ```sh
//! cargo run --release --example tv_news
//! ```
//!
//! Demonstrates the SQL dialect of Figure 1 end to end: register the
//! dataset in a catalog, bind the `contains_candidate` atom to the
//! predicate column, and execute the paper's exact query text.

use abae::data::synthetic::{PredicateModel, StatisticModel, SyntheticSpec};
use abae::query::{Catalog, Executor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A synthetic year of TV news: ~3% of frames show the candidate; the
    // proxy is a cheap specialized classifier; viewership (the statistic)
    // is higher during segments where candidates appear.
    let news = SyntheticSpec {
        name: "news".to_string(),
        n: 250_000,
        predicates: vec![PredicateModel::new("contains_candidate", 0.03, 0.8, 0.4)],
        statistic: StatisticModel::Normal { mean: 1.2, sd: 0.3, coupling: 0.8 },
        seed: 2021,
    }
    .generate()
    .expect("valid spec");

    let exact = news.exact_avg("contains_candidate").expect("predicate exists");

    let mut catalog = Catalog::new();
    catalog.register_table(news);

    let executor = Executor::new(&catalog);
    let mut rng = StdRng::seed_from_u64(99);
    let result = executor
        .execute(
            "SELECT AVG(views) FROM news \
             WHERE contains_candidate(frame, 'Biden') \
             ORACLE LIMIT 10,000 USING contains_candidate \
             WITH PROBABILITY 0.95",
            &mut rng,
        )
        .expect("query executes");

    let ci = result.ci().expect("scalar query carries a CI");
    println!("SELECT AVG(views) WHERE contains_candidate(frame, 'Biden')");
    println!("  estimate       : {:.4} million viewers", result.estimate());
    println!("  95% CI         : [{:.4}, {:.4}]", ci.lo, ci.hi);
    println!("  oracle calls   : {}", result.oracle_calls);
    println!("  exact (hidden) : {exact:.4}");
    println!("  CI covers truth: {}", ci.contains(exact));
}
