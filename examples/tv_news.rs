//! The paper's §2.2 TV-news scenario: a media-studies researcher computes
//! the average viewership of frames showing a presidential candidate,
//! where the predicate requires an expensive face-detection DNN.
//!
//! ```sh
//! cargo run --release --example tv_news
//! ```
//!
//! Demonstrates the SQL dialect of Figure 1 end to end through the
//! engine API: build an [`Engine`] holding the dataset, open a
//! [`Session`](abae::query::Session), and execute the paper's exact query
//! text — then prepare the same statement with an `ORACLE LIMIT ?`
//! placeholder and re-run it under a doubled budget without re-parsing.

use abae::data::synthetic::{PredicateModel, StatisticModel, SyntheticSpec};
use abae::query::Engine;

fn main() {
    // A synthetic year of TV news: ~3% of frames show the candidate; the
    // proxy is a cheap specialized classifier; viewership (the statistic)
    // is higher during segments where candidates appear.
    let news = SyntheticSpec {
        name: "news".to_string(),
        n: 250_000,
        predicates: vec![PredicateModel::new("contains_candidate", 0.03, 0.8, 0.4)],
        statistic: StatisticModel::Normal { mean: 1.2, sd: 0.3, coupling: 0.8 },
        seed: 2021,
    }
    .generate()
    .expect("valid spec");

    let exact = news.exact_avg("contains_candidate").expect("predicate exists");

    // One engine owns the table, the label cache, and the seed; sessions
    // are the per-client handles (a web service would open one per user).
    let engine = Engine::builder().table(news).label_cache(true).seed(99).build();
    let mut session = engine.session();
    let result = session
        .execute(
            "SELECT AVG(views) FROM news \
             WHERE contains_candidate(frame, 'Biden') \
             ORACLE LIMIT 10,000 USING contains_candidate \
             WITH PROBABILITY 0.95",
        )
        .expect("query executes");

    let ci = result.ci().expect("scalar query carries a CI");
    println!("SELECT AVG(views) WHERE contains_candidate(frame, 'Biden')");
    println!("  estimate       : {:.4} million viewers", result.estimate());
    println!("  95% CI         : [{:.4}, {:.4}]", ci.lo, ci.hi);
    println!("  oracle calls   : {}", result.oracle_calls);
    println!("  exact (hidden) : {exact:.4}");
    println!("  CI covers truth: {}", ci.contains(exact));

    // The analyst refines the budget: prepare once (parse + plan happen
    // here), then bind `?` and run. The second run reuses the label
    // cache, so it pays the oracle only for records the engine has not
    // already labeled.
    let stmt = session
        .prepare(
            "SELECT AVG(views) FROM news \
             WHERE contains_candidate(frame, 'Biden') \
             ORACLE LIMIT ? USING contains_candidate \
             WITH PROBABILITY 0.95",
        )
        .expect("statement plans");
    for budget in [10_000usize, 20_000] {
        let r = stmt.clone().with_budget(budget).run().expect("bound statement runs");
        let ci = r.ci().expect("scalar query carries a CI");
        println!(
            "  prepared @ {budget:>6} : {:.4}  CI [{:.4}, {:.4}]  \
             oracle spent {} (cache answered {})",
            r.estimate(),
            ci.lo,
            ci.hi,
            r.oracle_calls,
            r.cache_hits,
        );
    }
}
