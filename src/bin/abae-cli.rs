//! `abae-cli` — run ABae queries against CSV data from the command line.
//!
//! ```sh
//! # Query your own data (see `abae::data::csvio` for the CSV layout):
//! abae-cli --csv mydata.csv --table mydata "SELECT AVG(x) FROM mydata WHERE is_spam ORACLE LIMIT 1000"
//!
//! # Explain the physical plan instead of running it:
//! abae-cli --csv mydata.csv --table mydata --explain "SELECT ..."
//!
//! # No data handy? Query the emulated trec05p spam corpus:
//! abae-cli --demo "SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 2000"
//! ```

use abae::core::pipeline::ExecOptions;
use abae::data::csvio::read_table;
use abae::data::emulators::{trec05p, EmulatorOptions};
use abae::query::{Catalog, Executor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::BufReader;
use std::process::ExitCode;

struct Args {
    csv: Option<String>,
    table_name: String,
    demo: bool,
    explain: bool,
    seed: u64,
    exec: ExecOptions,
    sql: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: abae-cli [--csv FILE --table NAME | --demo] [--explain] [--seed N]\n\
         \x20               [--threads N] [--batch N] \"SQL\"\n\
         \n\
         The SQL dialect is the ABae paper's Figure 1:\n\
         SELECT {{AVG|SUM|COUNT|PERCENTAGE}}(expr) FROM table WHERE predicate\n\
         [GROUP BY key] ORACLE LIMIT n [USING proxy] [WITH PROBABILITY p]\n\
         \n\
         --threads / --batch control the parallel oracle-labeling pipeline\n\
         (defaults: env ABAE_THREADS / ABAE_BATCH, else 1 thread, batch 256).\n\
         Results are identical for any thread count or batch size."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        csv: None,
        table_name: "data".to_string(),
        demo: false,
        explain: false,
        seed: 0xABAE,
        exec: ExecOptions::default(),
        sql: String::new(),
    };
    let mut it = std::env::args().skip(1);
    let numeric = |it: &mut dyn Iterator<Item = String>| -> usize {
        it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => args.csv = Some(it.next().unwrap_or_else(|| usage())),
            "--table" => args.table_name = it.next().unwrap_or_else(|| usage()),
            "--demo" => args.demo = true,
            "--explain" => args.explain = true,
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => args.exec.threads = numeric(&mut it),
            "--batch" => args.exec.batch_size = numeric(&mut it).max(1),
            "--help" | "-h" => usage(),
            sql if !sql.starts_with("--") => args.sql = sql.to_string(),
            _ => usage(),
        }
    }
    if args.sql.is_empty() || (args.csv.is_none() && !args.demo) {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    let table = if args.demo {
        eprintln!("[demo] generating the emulated trec05p corpus ...");
        trec05p(&EmulatorOptions { scale: 1.0, seed: args.seed })
    } else {
        let path = args.csv.as_deref().expect("validated in parse_args");
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match read_table(&args.table_name, BufReader::new(file)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut catalog = Catalog::new();
    catalog.register_table(table);
    let mut executor = Executor::new(&catalog);
    executor.exec = args.exec;

    if args.explain {
        match executor.explain(&args.sql) {
            Ok(plan) => {
                println!("{plan}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let mut rng = StdRng::seed_from_u64(args.seed);
        match executor.execute(&args.sql, &mut rng) {
            Ok(result) => {
                if let Some(groups) = &result.groups {
                    println!("{:<20} {:>14}", "group", "estimate");
                    for row in groups {
                        println!("{:<20} {:>14.6}", row.name, row.estimate);
                    }
                } else {
                    println!("estimate     : {:.6}", result.estimate);
                    if let Some(ci) = result.ci {
                        println!(
                            "{:.0}% CI       : [{:.6}, {:.6}]",
                            ci.confidence * 100.0,
                            ci.lo,
                            ci.hi
                        );
                    }
                }
                println!("oracle calls : {}", result.oracle_calls);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
