//! `abae-cli` — run ABae queries against CSV data from the command line.
//!
//! ```sh
//! # Query your own data (see `abae::data::csvio` for the CSV layout):
//! abae-cli --csv mydata.csv --table mydata "SELECT AVG(x) FROM mydata WHERE is_spam ORACLE LIMIT 1000"
//!
//! # Explain the physical plan instead of running it:
//! abae-cli --csv mydata.csv --table mydata --explain "SELECT ..."
//!
//! # No data handy? Query the emulated trec05p spam corpus:
//! abae-cli --demo "SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 2000"
//!
//! # A multi-aggregate dashboard query — one oracle budget, three answers:
//! abae-cli --demo "SELECT COUNT(*), SUM(links), AVG(links) FROM trec05p \
//!                  WHERE is_spam ORACLE LIMIT 2000"
//!
//! # Several statements sharing the cross-query label cache: the second
//! # query reuses the first one's oracle verdicts.
//! abae-cli --demo --cache \
//!     "SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 2000" \
//!     "SELECT COUNT(*) FROM trec05p WHERE is_spam ORACLE LIMIT 2000"
//!
//! # Train a proxy in-engine, query with it, and list the artifacts:
//! abae-cli --demo \
//!     "CREATE PROXY spamnet ON trec05p(is_spam) USING logistic CALIBRATED TRAIN LIMIT 2000" \
//!     "SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 2000 USING spamnet" \
//!     "SHOW PROXIES"
//!
//! # Watch an anytime query converge — one progress line per labeling
//! # chunk — and stop early once the CI is narrower than 0.2:
//! abae-cli --demo --progress \
//!     "SELECT AVG(links) FROM trec05p WHERE is_spam \
//!      UNTIL CI WIDTH < 0.2 MAX ORACLE LIMIT 5000"
//!
//! # Interactive: one statement per stdin line against a persistent
//! # session — with --cache, watch later statements hit the warm store.
//! abae-cli --demo --cache --repl
//! ```
//!
//! Every invocation builds one shared [`Engine`] (tables + label cache +
//! tuning defaults) and serves all statements from a single [`Session`],
//! whose RNG stream derives from `--seed` — rerunning the same invocation
//! reproduces the same answers exactly.

use abae::core::pipeline::ExecOptions;
use abae::data::csvio::read_table;
use abae::data::emulators::{trec05p, EmulatorOptions};
use abae::data::TrainedProxy;
use abae::query::{Engine, QueryResult, Session, StatementOutcome};
use std::io::{BufRead, BufReader};
use std::process::ExitCode;

struct Args {
    csv: Option<String>,
    table_name: String,
    demo: bool,
    explain: bool,
    cache: bool,
    repl: bool,
    progress: bool,
    seed: u64,
    exec: ExecOptions,
    sql: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: abae-cli [--csv FILE --table NAME | --demo] [--explain] [--cache] [--repl]\n\
         \x20               [--progress] [--seed N] [--threads N] [--batch N] [\"SQL\" ...]\n\
         \n\
         The SQL dialect is the ABae paper's Figure 1, extended with\n\
         multi-aggregate SELECT lists (one labeling pass answers them all)\n\
         and in-engine proxy training:\n\
         SELECT {{AVG|SUM|COUNT|PERCENTAGE}}(expr) [, ...] FROM table WHERE predicate\n\
         [GROUP BY key] [UNTIL CI WIDTH < x MAX] ORACLE LIMIT n [USING proxy]\n\
         [WITH PROBABILITY p]\n\
         CREATE PROXY name ON table(predicate) [USING {{keyword|logistic}}]\n\
         [CALIBRATED] [TRAIN LIMIT n]\n\
         SHOW PROXIES [FROM table]\n\
         \n\
         All SQL statements are served by one session on a shared engine;\n\
         --cache enables the cross-query oracle label store, so later\n\
         statements reuse verdicts already bought by earlier ones.\n\
         --repl reads one statement per stdin line against the same\n\
         persistent session (prefix with EXPLAIN to plan without running;\n\
         quit/exit or EOF ends). Positional SQL runs before the repl.\n\
         --progress streams one line per labeling chunk to stderr while a\n\
         SELECT runs (anytime snapshots: estimate, CI, budget spent);\n\
         combined with UNTIL CI WIDTH the query stops once the CI is\n\
         narrow enough, spending less than the oracle limit.\n\
         --threads / --batch control the parallel oracle-labeling pipeline\n\
         (defaults: env ABAE_THREADS / ABAE_BATCH, else 1 thread, batch 256).\n\
         Results are identical for any thread count or batch size."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        csv: None,
        table_name: "data".to_string(),
        demo: false,
        explain: false,
        cache: false,
        repl: false,
        progress: false,
        seed: 0xABAE,
        exec: ExecOptions::default(),
        sql: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    let numeric = |it: &mut dyn Iterator<Item = String>| -> usize {
        it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => args.csv = Some(it.next().unwrap_or_else(|| usage())),
            "--table" => args.table_name = it.next().unwrap_or_else(|| usage()),
            "--demo" => args.demo = true,
            "--explain" => args.explain = true,
            "--cache" => args.cache = true,
            "--repl" => args.repl = true,
            "--progress" => args.progress = true,
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => args.exec = args.exec.with_threads(numeric(&mut it)),
            "--batch" => args.exec = args.exec.with_batch_size(numeric(&mut it).max(1)),
            "--help" | "-h" => usage(),
            sql if !sql.starts_with("--") => args.sql.push(sql.to_string()),
            _ => usage(),
        }
    }
    if (args.sql.is_empty() && !args.repl) || (args.csv.is_none() && !args.demo) {
        usage();
    }
    args
}

/// Prints a trained-proxy listing row.
fn print_proxy(proxy: &TrainedProxy) {
    println!("proxy        : {}", proxy.describe());
}

/// Prints one statement outcome: query rows, a created proxy, or the
/// `SHOW PROXIES` listing.
fn print_outcome(outcome: &StatementOutcome, cache: bool) {
    match outcome {
        StatementOutcome::Rows(result) => print_result(result, cache),
        // `describe()` already reports the training oracle spend.
        StatementOutcome::ProxyCreated(proxy) => print_proxy(proxy),
        StatementOutcome::Proxies(proxies) if proxies.is_empty() => {
            println!("(no trained proxies registered)");
        }
        StatementOutcome::Proxies(proxies) => {
            for proxy in proxies {
                print_proxy(proxy);
            }
        }
    }
}

/// Prints one query result in the CLI's tabular format.
fn print_result(result: &QueryResult, cache: bool) {
    if let Some(groups) = &result.groups {
        println!("{:<20} {:>14} {:>30}", "group", "estimate", "ci");
        for row in groups {
            let ci = row
                .ci
                .map(|ci| format!("[{:.6}, {:.6}]", ci.lo, ci.hi))
                .unwrap_or_else(|| "-".to_string());
            println!("{:<20} {:>14.6} {:>30}", row.name, row.estimate, ci);
        }
    } else {
        for row in &result.rows {
            let label = format!("{}({})", row.func, row.expr);
            print!("{label:<20} : {:.6}", row.estimate);
            if let Some(ci) = row.ci {
                print!(
                    "   {:.0}% CI [{:.6}, {:.6}]",
                    ci.confidence * 100.0,
                    ci.lo,
                    ci.hi
                );
            }
            println!();
        }
    }
    println!("oracle calls : {}", result.oracle_calls);
    if cache {
        println!(
            "label cache  : {} hits / {} misses",
            result.cache_hits, result.cache_misses
        );
    }
}

/// Runs one statement; with `--progress`, SELECTs stream one snapshot line
/// per labeling chunk to stderr before the final tabular answer.
fn run_statement(
    session: &mut Session,
    sql: &str,
    cache: bool,
    progress: bool,
) -> Result<(), abae::query::QueryError> {
    use abae::query::{parse_statement, Statement};
    if progress && matches!(parse_statement(sql)?, Statement::Select(_)) {
        let result = session.execute_progressive(sql, |snap| {
            let mut line = format!("[progress] {:>8} labels", snap.budget_spent);
            if let Some(est) = snap.estimate() {
                line.push_str(&format!("  estimate {est:.6}"));
            }
            if let Some(ci) = snap.ci() {
                line.push_str(&format!(
                    "  ci [{:.6}, {:.6}] width {:.6}",
                    ci.lo,
                    ci.hi,
                    ci.width()
                ));
            }
            if snap.done {
                line.push_str("  — final");
            }
            eprintln!("{line}");
        })?;
        print_result(&result, cache);
    } else {
        print_outcome(&session.run(sql)?, cache);
    }
    Ok(())
}

/// Reads one statement per stdin line against the persistent session.
/// Errors are reported and the loop continues — an interactive client
/// should not die on a typo.
fn repl(session: &mut Session, cache: bool, progress: bool) {
    eprintln!(
        "abae repl — one SQL statement per line (SELECT, CREATE PROXY, SHOW PROXIES); \
         prefix with EXPLAIN to plan without spending oracle calls; \
         quit/exit (or EOF) ends."
    );
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: cannot read stdin: {e}");
                break;
            }
        };
        let stmt = line.trim();
        if stmt.is_empty() || stmt.starts_with('#') || stmt.starts_with("--") {
            continue;
        }
        if stmt.eq_ignore_ascii_case("quit") || stmt.eq_ignore_ascii_case("exit") {
            break;
        }
        // `stmt` is trimmed, so a leading EXPLAIN keyword (any case, any
        // following whitespace) occupies exactly the first 7 bytes.
        let keyword = stmt.split_whitespace().next().expect("stmt is non-empty");
        if keyword.eq_ignore_ascii_case("EXPLAIN") {
            let rest = stmt[keyword.len()..].trim();
            if rest.is_empty() {
                eprintln!("error: EXPLAIN needs a statement to plan");
            } else {
                match session.explain(rest) {
                    Ok(plan) => println!("{plan}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        } else if let Err(e) = run_statement(session, stmt, cache, progress) {
            eprintln!("error: {e}");
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    let table = if args.demo {
        eprintln!("[demo] generating the emulated trec05p corpus ...");
        trec05p(&EmulatorOptions { scale: 1.0, seed: args.seed })
    } else {
        let path = args.csv.as_deref().expect("validated in parse_args");
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match read_table(&args.table_name, BufReader::new(file)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let engine = Engine::builder()
        .table(table)
        .label_cache(args.cache)
        .seed(args.seed)
        .exec(args.exec)
        .build();
    let mut session = engine.session();

    for (i, sql) in args.sql.iter().enumerate() {
        if args.sql.len() > 1 {
            println!("{}-- [{}] {sql}", if i > 0 { "\n" } else { "" }, i + 1);
        }
        if args.explain {
            match session.explain(sql) {
                Ok(plan) => println!("{plan}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            continue;
        }
        if let Err(e) = run_statement(&mut session, sql, args.cache, args.progress) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    if args.repl {
        repl(&mut session, args.cache, args.progress);
    }
    ExitCode::SUCCESS
}
