//! `abae-server` — serve ABae queries over the Postgres wire protocol.
//!
//! ```sh
//! # Serve the emulated trec05p corpus on the conventional alt port:
//! abae-server --demo --addr 127.0.0.1:5433 --cache
//!
//! # Then, from any stock psql:
//! psql -h 127.0.0.1 -p 5433 -c \
//!     "SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 2000"
//!
//! # Serve your own CSV (see `abae::data::csvio` for the layout):
//! abae-server --csv mydata.csv --table mydata --addr 127.0.0.1:5433
//!
//! # Built-in smoke test: bind an ephemeral port, drive one good query
//! # and one malformed query through the in-repo wire client, shut down.
//! abae-server --demo --self-check
//! ```
//!
//! Every TCP connection gets its own engine session (accept order =
//! session id), so results are reproducible per `--seed`: connection N of
//! a fresh server replays the same RNG stream every run.

use abae::core::pipeline::ExecOptions;
use abae::data::csvio::read_table;
use abae::data::emulators::{trec05p, EmulatorOptions};
use abae::query::Engine;
use abae::server::{Server, WireClient};
use std::io::BufReader;
use std::process::ExitCode;

struct Args {
    addr: String,
    csv: Option<String>,
    table_name: String,
    demo: bool,
    cache: bool,
    verbose: bool,
    self_check: bool,
    seed: u64,
    scale: f64,
    exec: ExecOptions,
    governor: bool,
    oracle_overhead_us: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: abae-server [--csv FILE --table NAME | --demo] [--addr HOST:PORT]\n\
         \x20                  [--cache] [--seed N] [--threads N] [--batch N]\n\
         \x20                  [--scale F] [--governor] [--oracle-overhead-us N]\n\
         \x20                  [--verbose] [--self-check]\n\
         \n\
         Serves the ABae SQL dialect over the Postgres simple query\n\
         protocol (auth-less, clear text) — connect with any psql:\n\
         \x20   psql -h HOST -p PORT -c \"SELECT ...\"\n\
         \n\
         Statements: SELECT (multi-aggregate, GROUP BY, UNTIL CI WIDTH\n\
         with per-chunk NOTICE progress), CREATE PROXY, SHOW PROXIES, and\n\
         EXPLAIN. One connection = one engine session: accept order is\n\
         session-id order, so per-connection results reproduce exactly\n\
         for a given --seed.\n\
         \n\
         --addr defaults to 127.0.0.1:5433 (port 0 = ephemeral, printed\n\
         on startup). --cache shares the cross-query oracle label store\n\
         among all connections. --scale sizes the --demo corpus.\n\
         --governor coalesces concurrent connections' oracle requests\n\
         into shared invocations (per-session results are bit-identical\n\
         either way; SHOW STATS reports the counters), and\n\
         --oracle-overhead-us charges a simulated fixed cost per\n\
         invocation so amortization is observable.\n\
         --self-check binds an ephemeral port, runs one good and one\n\
         malformed query through the in-repo wire client, and exits 0 on\n\
         success — CI's server smoke."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:5433".to_string(),
        csv: None,
        table_name: "data".to_string(),
        demo: false,
        cache: false,
        verbose: false,
        self_check: false,
        seed: 0xABAE,
        scale: 1.0,
        exec: ExecOptions::default(),
        governor: false,
        oracle_overhead_us: 0,
    };
    let mut it = std::env::args().skip(1);
    let numeric = |it: &mut dyn Iterator<Item = String>| -> usize {
        it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = it.next().unwrap_or_else(|| usage()),
            "--csv" => args.csv = Some(it.next().unwrap_or_else(|| usage())),
            "--table" => args.table_name = it.next().unwrap_or_else(|| usage()),
            "--demo" => args.demo = true,
            "--cache" => args.cache = true,
            "--verbose" => args.verbose = true,
            "--self-check" => args.self_check = true,
            "--seed" => {
                args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--scale" => {
                args.scale = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--governor" => args.governor = true,
            "--oracle-overhead-us" => {
                args.oracle_overhead_us =
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--threads" => args.exec = args.exec.with_threads(numeric(&mut it)),
            "--batch" => args.exec = args.exec.with_batch_size(numeric(&mut it).max(1)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.csv.is_none() && !args.demo {
        usage();
    }
    args
}

/// Drives the just-spawned server through the in-repo wire client: a good
/// query must answer framed rows, a malformed query must answer an
/// `ErrorResponse` *without* dropping the connection, and `Terminate`
/// must close cleanly. Returns an error message on the first deviation.
fn self_check(addr: std::net::SocketAddr, table: &str) -> Result<(), String> {
    let sql = format!("SELECT AVG(links) FROM {table} WHERE is_spam ORACLE LIMIT 200");
    let mut client = WireClient::connect_opts(addr, true)
        .map_err(|e| format!("connect (with SSL probe): {e}"))?;

    let good = client.query(&sql).map_err(|e| format!("query: {e}"))?;
    if let Some(err) = &good.error {
        return Err(format!("good query errored: {} ({})", err.message, err.sqlstate));
    }
    if good.columns.first().map(|c| c.name.as_str()) != Some("aggregate") {
        return Err(format!("unexpected columns: {:?}", good.columns));
    }
    if good.rows.len() != 1 || good.f64(0, 1).is_none() {
        return Err(format!("unexpected rows: {:?}", good.rows));
    }
    println!(
        "self-check: query ok — estimate {} ({})",
        good.rows[0][1].as_deref().unwrap_or("?"),
        good.tags.join(", ")
    );

    let bad = client.query("SELECT oops").map_err(|e| format!("bad query: {e}"))?;
    let err = bad.error.ok_or("malformed query did not error")?;
    if err.sqlstate != "42601" {
        return Err(format!("expected SQLSTATE 42601, got {}", err.sqlstate));
    }
    println!("self-check: malformed query answered ErrorResponse {}", err.sqlstate);

    // The error must not have killed the connection.
    let again = client.query(&sql).map_err(|e| format!("query after error: {e}"))?;
    if again.error.is_some() || again.rows.len() != 1 {
        return Err("connection unusable after ErrorResponse".to_string());
    }
    println!("self-check: connection survived the error");

    client.terminate().map_err(|e| format!("terminate: {e}"))?;
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();

    let table = if args.demo {
        eprintln!("[demo] generating the emulated trec05p corpus (scale {}) ...", args.scale);
        trec05p(&EmulatorOptions { scale: args.scale, seed: args.seed })
    } else {
        let path = args.csv.as_deref().expect("validated in parse_args");
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match read_table(&args.table_name, BufReader::new(file)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let table_name = table.name().to_string();

    let engine = Engine::builder()
        .table(table)
        .label_cache(args.cache)
        .seed(args.seed)
        .exec(args.exec)
        .governor(args.governor)
        .oracle_overhead(std::time::Duration::from_micros(args.oracle_overhead_us))
        .build();

    // Self-check always binds an ephemeral port: it must not collide with
    // (or be confused for) a real serving instance.
    let addr: &str = if args.self_check { "127.0.0.1:0" } else { &args.addr };
    let server = match Server::bind(engine, addr) {
        Ok(s) => s.verbose(args.verbose),
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: cannot resolve bound address: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.self_check {
        let handle = match server.spawn() {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: cannot start accept thread: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("self-check: serving {table_name} on {bound}");
        let result = self_check(bound, &table_name);
        handle.shutdown();
        return match result {
            Ok(()) => {
                println!("self-check: PASS");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("self-check: FAIL — {msg}");
                ExitCode::FAILURE
            }
        };
    }

    eprintln!(
        "abae-server: serving table `{table_name}` on {bound} \
         (psql -h {} -p {})",
        bound.ip(),
        bound.port()
    );
    if let Err(e) = server.serve() {
        eprintln!("error: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
