//! # ABae — approximate aggregation queries with expensive predicates
//!
//! A from-scratch Rust reproduction of *Kang, Guibas, Bailis, Hashimoto,
//! Sun, Zaharia: Accelerating Approximate Aggregation Queries with Expensive
//! Predicates* (VLDB 2021).
//!
//! This facade crate re-exports the workspace's public API. See `DESIGN.md`
//! for the system inventory and `EXPERIMENTS.md` for the reproduction of the
//! paper's tables and figures.

#![forbid(unsafe_code)]

pub use abae_core as core;
pub use abae_data as data;
pub use abae_ml as ml;
pub use abae_optim as optim;
pub use abae_query as query;
pub use abae_sampling as sampling;
pub use abae_server as server;
pub use abae_stats as stats;
