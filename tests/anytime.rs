//! Anytime-aggregation invariants, end to end.
//!
//! The anytime executor labels in budget chunks and emits a statistically
//! valid snapshot after each one. Its central contract: **the final
//! snapshot of a full-budget progressive run is bit-identical to the
//! blocking run** — for any thread count and any chunk size — because all
//! randomness is drawn up front and chunking only changes *when* answers
//! are reported, never what is sampled. These tests pin that contract at
//! the core and query layers, plus the statistical behavior that makes
//! anytime execution useful: expected CI width shrinks as the budget
//! grows, the CIs actually cover the ground truth, and an
//! `UNTIL CI WIDTH < x MAX` stopping rule spends strictly less budget
//! while delivering the requested precision.

use abae::core::groupby::{
    groupby_single_oracle_progressive, groupby_single_oracle_with_ci, GroupByConfig,
};
use abae::core::pipeline::ExecOptions;
use abae::core::{
    merge_states, run_abae_multi_progressive, run_abae_multi_with_ci, run_abae_with_ci,
    AbaeConfig, Aggregate, BootstrapConfig, MultiAggResult, ProgressiveOptions, Snapshot,
    StratumStats,
};
use abae::data::{FnOracle, Labeled, SingleGroupOracle, Table};
use abae::query::{Engine, EngineOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The (threads, chunk) matrix every bit-identity scenario runs under.
const THREADS: [usize; 2] = [1, 8];
const CHUNKS: [usize; 3] = [1, 64, 4096];

/// A seeded random population: proxy scores of mixed quality, labels
/// correlated with the proxy, values with per-record structure.
fn population(n: usize, seed: u64) -> (Vec<f64>, Vec<bool>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let s: f64 = rng.gen();
        scores.push(s);
        labels.push(rng.gen::<f64>() < 0.2 + 0.6 * s);
        values.push(rng.gen_range(0.0..50.0));
    }
    (scores, labels, values)
}

fn oracle_for(labels: &[bool], values: &[f64]) -> FnOracle<impl Fn(usize) -> Labeled> {
    let labels = labels.to_vec();
    let values = values.to_vec();
    FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] })
}

fn assert_bit_identical(reference: &MultiAggResult, got: &MultiAggResult, what: &str) {
    assert_eq!(reference.oracle_calls, got.oracle_calls, "{what}: oracle_calls differ");
    assert_eq!(reference.answers.len(), got.answers.len(), "{what}: answer count differs");
    for (a, b) in reference.answers.iter().zip(&got.answers) {
        assert_eq!(
            a.estimate.to_bits(),
            b.estimate.to_bits(),
            "{what}: {:?} estimate differs ({} vs {})",
            a.agg,
            a.estimate,
            b.estimate
        );
        match (&a.ci, &b.ci) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.lo.to_bits(), y.lo.to_bits(), "{what}: {:?} CI lo differs", a.agg);
                assert_eq!(x.hi.to_bits(), y.hi.to_bits(), "{what}: {:?} CI hi differs", a.agg);
            }
            _ => panic!("{what}: {:?} CI presence differs", a.agg),
        }
    }
}

/// Core contract: for every (threads, chunk) combination the progressive
/// run's final answer — and its `done` snapshot — reproduce the blocking
/// multi-aggregate run bit for bit, and the snapshot stream is well-formed
/// (strictly increasing spend, exactly one `done`).
#[test]
fn progressive_final_answer_is_bit_identical_to_blocking() {
    for seed in [7u64, 1234] {
        let (scores, labels, values) = population(4000, seed);
        let aggs = [Aggregate::Avg, Aggregate::Sum];
        let cfg_for = |threads: usize, batch: usize| AbaeConfig {
            budget: 1200,
            bootstrap: BootstrapConfig { trials: 60, alpha: 0.05 },
            exec: ExecOptions::new(threads, batch),
            ..Default::default()
        };

        let oracle = oracle_for(&labels, &values);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA11);
        let blocking =
            run_abae_multi_with_ci(&scores, &oracle, &cfg_for(1, 64), &aggs, &mut rng)
                .expect("valid config");

        for threads in THREADS {
            for chunk in CHUNKS {
                let oracle = oracle_for(&labels, &values);
                let progressive = ProgressiveOptions { chunk: Some(chunk), target_ci_width: None };
                let mut snaps: Vec<Snapshot> = Vec::new();
                let mut rng = StdRng::seed_from_u64(seed ^ 0xA11);
                let got = run_abae_multi_progressive(
                    &scores,
                    &oracle,
                    &cfg_for(threads, 64),
                    &aggs,
                    &progressive,
                    &mut rng,
                    |s| snaps.push(s.clone()),
                )
                .expect("valid config");

                let what = format!("threads={threads} chunk={chunk}");
                assert_bit_identical(&blocking, &got, &what);
                assert!(
                    snaps.windows(2).all(|w| w[0].budget_spent < w[1].budget_spent),
                    "{what}: snapshot spend must strictly increase"
                );
                assert_eq!(
                    snaps.iter().filter(|s| s.done).count(),
                    1,
                    "{what}: exactly one done snapshot"
                );
                let last = snaps.last().expect("at least one snapshot");
                assert!(last.done, "{what}: last snapshot must be the done one");
                assert_eq!(last.answers, got.answers, "{what}: done snapshot IS the answer");
                assert_eq!(last.budget_spent, got.oracle_calls, "{what}: spend accounting");
            }
        }
    }
}

/// A three-group table for the group-by scenario (mirrors
/// `tests/parallel_determinism.rs`).
fn group_table(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut key = Vec::with_capacity(n);
    let mut labels: Vec<Vec<bool>> = (0..3).map(|_| Vec::with_capacity(n)).collect();
    let mut proxies: Vec<Vec<f64>> = (0..3).map(|_| Vec::with_capacity(n)).collect();
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen();
        let group = if u < 0.15 {
            Some(0u16)
        } else if u < 0.28 {
            Some(1)
        } else if u < 0.36 {
            Some(2)
        } else {
            None
        };
        key.push(group);
        for g in 0..3u16 {
            let member = group == Some(g);
            labels[g as usize].push(member);
            let base: f64 = if member { 0.7 } else { 0.3 };
            proxies[g as usize].push((base + rng.gen_range(-0.25..0.25)).clamp(0.0, 1.0));
        }
        values.push(group.map(|g| 10.0 * (g + 1) as f64).unwrap_or(0.0) + rng.gen_range(0.0..2.0));
    }
    let mut builder = Table::builder("grp", values);
    for (g, name) in ["g0", "g1", "g2"].iter().enumerate() {
        builder = builder.predicate(
            *name,
            std::mem::take(&mut labels[g]),
            std::mem::take(&mut proxies[g]),
        );
    }
    builder
        .group_key(vec!["g0".into(), "g1".into(), "g2".into()], key)
        .build()
        .unwrap()
}

/// The same contract for the group-by executor: full-budget progressive
/// runs reproduce the blocking per-group estimates and CIs bit for bit
/// under every (threads, chunk) combination.
#[test]
fn groupby_progressive_is_bit_identical_to_blocking() {
    // Kept deliberately small: the chunk=1 leg bootstraps every group at
    // every one of `budget` snapshot boundaries, so cost scales with
    // budget × trials × samples.
    let seed = 42u64;
    let t = group_table(3000, seed);
    let proxies: Vec<&[f64]> = t.predicates().iter().map(|p| p.proxy()).collect();
    let bootstrap = BootstrapConfig { trials: 25, alpha: 0.05 };
    let cfg_for = |threads: usize| GroupByConfig {
        budget: 600,
        exec: ExecOptions::new(threads, 64),
        ..Default::default()
    };

    let oracle = SingleGroupOracle::new(&t).expect("grouped table");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x60D);
    let blocking =
        groupby_single_oracle_with_ci(&proxies, &oracle, &cfg_for(1), &bootstrap, &mut rng)
            .expect("valid config");

    for threads in THREADS {
        for chunk in CHUNKS {
            let oracle = SingleGroupOracle::new(&t).expect("grouped table");
            let progressive = ProgressiveOptions { chunk: Some(chunk), target_ci_width: None };
            let mut snapshots = 0usize;
            let mut rng = StdRng::seed_from_u64(seed ^ 0x60D);
            let got = groupby_single_oracle_progressive(
                &proxies,
                &oracle,
                &cfg_for(threads),
                &bootstrap,
                &progressive,
                &mut rng,
                |_| snapshots += 1,
            )
            .expect("valid config");

            let what = format!("group-by threads={threads} chunk={chunk}");
            assert!(snapshots >= 1, "{what}: at least one snapshot");
            assert_eq!(blocking.len(), got.groups.len(), "{what}: group count");
            for (a, b) in blocking.iter().zip(&got.groups) {
                assert_eq!(a.group, b.group, "{what}");
                assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "{what}: estimate");
                match (&a.ci, &b.ci) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(x.lo.to_bits(), y.lo.to_bits(), "{what}: CI lo");
                        assert_eq!(x.hi.to_bits(), y.hi.to_bits(), "{what}: CI hi");
                    }
                    _ => panic!("{what}: CI presence differs"),
                }
            }
        }
    }
}

/// Statistical sanity: the expected CI width (averaged over seeds) is
/// monotone non-increasing as the budget doubles. A 5% tolerance absorbs
/// bootstrap noise; the √budget law predicts ~30% shrink per doubling.
#[test]
fn expected_ci_width_shrinks_with_budget() {
    let (scores, labels, values) = population(6000, 99);
    let budgets = [600usize, 1200, 2400, 4800];
    let seeds = 12u64;

    let mut avg_widths = Vec::new();
    for &budget in &budgets {
        let mut total = 0.0;
        for s in 0..seeds {
            let oracle = oracle_for(&labels, &values);
            let cfg = AbaeConfig {
                budget,
                bootstrap: BootstrapConfig { trials: 40, alpha: 0.05 },
                exec: ExecOptions::sequential(),
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(1000 + s);
            let r = run_abae_with_ci(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng)
                .expect("valid config");
            total += r.ci.expect("bootstrap CI").width();
        }
        avg_widths.push(total / seeds as f64);
    }
    for pair in avg_widths.windows(2) {
        assert!(
            pair[1] <= pair[0] * 1.05,
            "expected CI width must not grow with budget: {avg_widths:?}"
        );
    }
    assert!(
        avg_widths.last().unwrap() < &(avg_widths[0] * 0.75),
        "quadrupling the budget should shrink the CI substantially: {avg_widths:?}"
    );
}

/// Statistical sanity: the 95% bootstrap CI brackets the true average at
/// roughly its nominal coverage. 40 independent runs; ≥85% must cover
/// (nominal 95%, slack for bootstrap approximation and small samples).
#[test]
fn ci_brackets_ground_truth_at_coverage() {
    let (scores, labels, values) = population(6000, 7);
    let truth = {
        let (mut sum, mut n) = (0.0, 0usize);
        for (l, v) in labels.iter().zip(&values) {
            if *l {
                sum += v;
                n += 1;
            }
        }
        sum / n as f64
    };

    let runs = 40u64;
    let mut covered = 0usize;
    for s in 0..runs {
        let oracle = oracle_for(&labels, &values);
        let cfg = AbaeConfig {
            budget: 1500,
            bootstrap: BootstrapConfig { trials: 60, alpha: 0.05 },
            exec: ExecOptions::sequential(),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5000 + s);
        let r = run_abae_with_ci(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng)
            .expect("valid config");
        if r.ci.expect("bootstrap CI").contains(truth) {
            covered += 1;
        }
    }
    let coverage = covered as f64 / runs as f64;
    assert!(coverage >= 0.85, "coverage {coverage:.2} below 0.85 (truth {truth:.3})");
}

/// An engine over a synthetic table for the query-layer scenarios.
fn engine_with(exec: ExecOptions, seed: u64) -> Engine {
    let n = 4000;
    let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
    let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
    let t = Table::builder("emails", values)
        .predicate("is_spam", labels, proxy)
        .build()
        .unwrap();
    Engine::builder()
        .table(t)
        .options(EngineOptions { bootstrap_trials: 60, exec, ..Default::default() })
        .seed(seed)
        .build()
}

/// Query-layer bit identity: a progressive run's result — and its final
/// snapshot — equal the blocking result for every (threads, chunk)
/// engine configuration, because the session stream depends only on
/// (engine seed, session id).
#[test]
fn query_layer_progressive_matches_blocking_for_any_exec_options() {
    const SQL: &str = "SELECT AVG(links), COUNT(*) FROM emails WHERE is_spam ORACLE LIMIT 900";
    let blocking = engine_with(ExecOptions::new(1, 64), 3)
        .session_with_id(11)
        .execute(SQL)
        .expect("blocking query");

    for threads in THREADS {
        for chunk in CHUNKS {
            let engine = engine_with(ExecOptions::new(threads, chunk), 3);
            let mut snaps = Vec::new();
            let got = engine
                .session_with_id(11)
                .execute_progressive(SQL, |s| snaps.push(s.clone()))
                .expect("progressive query");
            let what = format!("query threads={threads} chunk={chunk}");
            assert_eq!(got, blocking, "{what}: results differ");
            let last = snaps.last().expect("snapshots");
            assert!(last.done, "{what}");
            assert_eq!(last.rows, blocking.rows, "{what}: final snapshot rows");
            assert_eq!(last.budget_spent, blocking.oracle_calls, "{what}: spend");
        }
    }
}

/// The stopping rule, end to end through SQL: `UNTIL CI WIDTH < x MAX`
/// spends strictly less than the cap, meets the requested width, and
/// charges only the labels actually consumed.
#[test]
fn until_ci_width_stops_early_and_charges_only_spent_budget() {
    let engine = engine_with(ExecOptions::new(1, 64), 5);
    let full = engine
        .session_with_id(2)
        .execute("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT 3000")
        .expect("blocking query");
    let stopped = engine
        .session_with_id(2)
        .execute(
            "SELECT AVG(links) FROM emails WHERE is_spam \
             UNTIL CI WIDTH < 5 MAX ORACLE LIMIT 3000",
        )
        .expect("anytime query");

    assert!(
        stopped.oracle_calls < full.oracle_calls,
        "early stop must spend strictly less ({} vs {})",
        stopped.oracle_calls,
        full.oracle_calls
    );
    let ci = stopped.ci().expect("scalar CI");
    assert!(ci.width() < 5.0, "width {} misses the target", ci.width());

    // An unreachable target degrades gracefully to the full-budget run —
    // bit-identical to the blocking answer.
    let capped = engine
        .session_with_id(2)
        .execute(
            "SELECT AVG(links) FROM emails WHERE is_spam \
             UNTIL CI WIDTH < 0.000000000001 MAX ORACLE LIMIT 3000",
        )
        .expect("anytime query");
    assert_eq!(capped.rows, full.rows, "unreachable target must equal the blocking run");
    assert_eq!(capped.oracle_calls, full.oracle_calls);
}

/// Chunked ingest: folding labeled draws into per-stratum stats partition
/// by partition — in any split — yields exactly the state of a single
/// pass, because `StratumStats::merge` is a commutative monoid over the
/// draw multiset.
#[test]
fn partitioned_ingest_matches_single_pass() {
    let (_, labels, values) = population(500, 21);
    let draws: Vec<(usize, Labeled)> = (0..500)
        .map(|i| (i, Labeled { matches: labels[i], value: values[i] }))
        .collect();

    let single = vec![StratumStats::from_labeled(500, draws.iter().copied())];
    for split in [1usize, 3, 7, 499] {
        let mut merged = vec![StratumStats::empty(500)];
        for part in draws.chunks(split) {
            merged = merge_states(
                merged,
                vec![StratumStats::from_labeled(500, part.iter().copied())],
            );
        }
        assert_eq!(merged, single, "split {split} must reproduce the single-pass state");
    }
}
