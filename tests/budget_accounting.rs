//! Budget-accounting invariants: algorithms spend exactly what the paper's
//! cost model says they spend, with the atomic counter as the witness, and
//! the spend is invariant to how labeling is batched or threaded.
//!
//! The paper's cost metric is oracle invocations (§5.1); `ORACLE LIMIT`
//! is a hard budget. Under floor rounding the spend is
//! `K·N1 + Σ_k ⌊N2·T̂_k⌋` — strictly under budget when the fractional
//! allocation truncates — and under largest-remainder rounding the full
//! budget is spent. These tests pin the exact arithmetic, including the
//! truncation edge cases, across batch sizes 1 / 7 / 64 / 1024 and 1 / 8
//! threads.

use abae::core::groupby::{groupby_multi_oracle, groupby_single_oracle, GroupByConfig};
use abae::core::multipred::{run_multipred, PredExpr};
use abae::core::pipeline::ExecOptions;
use abae::core::two_stage::run_two_stage;
use abae::core::{run_abae, AbaeConfig, Aggregate, Rounding, Stratification};
use abae::data::{FnOracle, Labeled, Oracle, PredicateOracle, SingleGroupOracle, Table};
use abae::sampling::budget::{floor_allocation, stage_split};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BATCHES: [usize; 4] = [1, 7, 64, 1024];
const THREADS: [usize; 2] = [1, 8];

fn population(n: usize, seed: u64) -> (Vec<f64>, Vec<bool>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let s: f64 = rng.gen();
        scores.push(s);
        labels.push(rng.gen::<f64>() < 0.15 + 0.7 * s);
        values.push(rng.gen_range(0.0..30.0));
    }
    (scores, labels, values)
}

fn oracle_for(labels: &[bool], values: &[f64]) -> FnOracle<impl Fn(usize) -> Labeled + Sync> {
    let labels = labels.to_vec();
    let values = values.to_vec();
    FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] })
}

/// Largest-remainder rounding spends exactly `ORACLE LIMIT`, for awkward
/// budgets that don't divide by the strata count, at every batch size and
/// thread count.
#[test]
fn largest_remainder_spends_exactly_the_budget() {
    let (scores, labels, values) = population(30_000, 1);
    for budget in [997usize, 1003, 2500] {
        for threads in THREADS {
            for batch in BATCHES {
                let oracle = oracle_for(&labels, &values);
                let cfg = AbaeConfig {
                    budget,
                    rounding: Rounding::LargestRemainder,
                    exec: ExecOptions::new(threads, batch),
                    ..Default::default()
                };
                let mut rng = StdRng::seed_from_u64(7);
                let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
                assert_eq!(
                    r.oracle_calls, budget as u64,
                    "budget {budget} threads {threads} batch {batch}"
                );
                assert_eq!(oracle.calls(), r.oracle_calls, "atomic counter disagrees");
            }
        }
    }
}

/// Floor rounding spends exactly `K·N1 + Σ_k ⌊N2·T̂_k⌋` — the white-box
/// arithmetic of Algorithm 1 — reproducible from the run's own pilot
/// estimates. The chosen budgets force truncation (`Σ⌊·⌋ < N2`).
#[test]
fn floor_rounding_spend_matches_the_papers_arithmetic() {
    let (scores, labels, values) = population(30_000, 2);
    for (budget, strata) in [(1000usize, 5usize), (1009, 3), (777, 7)] {
        for threads in THREADS {
            for batch in BATCHES {
                let oracle = oracle_for(&labels, &values);
                let cfg = AbaeConfig {
                    budget,
                    strata,
                    exec: ExecOptions::new(threads, batch),
                    ..Default::default()
                };
                let strat = Stratification::by_proxy_quantile(&scores, strata);
                let mut rng = StdRng::seed_from_u64(11);
                let run = run_two_stage(&strat, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();

                let split = stage_split(budget, cfg.stage1_fraction, strata);
                let weights: Vec<f64> =
                    run.pilot.iter().map(|e| e.p_hat.sqrt() * e.sigma_hat).collect();
                let stage2: usize =
                    floor_allocation(&weights, split.n2_total).into_iter().sum();
                let expected = (strata * split.n1_per_stratum + stage2) as u64;
                assert_eq!(
                    run.oracle_calls, expected,
                    "budget {budget} strata {strata} threads {threads} batch {batch}"
                );
                assert!(run.oracle_calls <= budget as u64);
                assert_eq!(oracle.calls(), run.oracle_calls);
            }
        }
    }
}

/// A floor-truncation edge case with known arithmetic: a uniform population
/// makes every stratum's weight equal, so `⌊N2/K⌋` per stratum and
/// `N2 mod K` draws are left unspent.
#[test]
fn floor_truncation_leaves_the_remainder_unspent() {
    let n = 20_000;
    let scores: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
    // Every record matches with a constant statistic: every stratum's
    // weight `√p̂·σ̂` is exactly 0, so the allocator's uniform fallback
    // splits N2 evenly and the floor arithmetic is knowable in advance.
    let values = vec![2.5; n];
    let labels = vec![true; n];
    // budget 1000, K 5, C 0.5 → N1 = 100/stratum, N2 = 500 → all spent;
    // budget 1004 → N1 = 100, N2 = 504 → ⌊504/5⌋·5 = 500, 4 unspent.
    for (budget, expected) in [(1000usize, 1000u64), (1004, 1000)] {
        for batch in BATCHES {
            let oracle = oracle_for(&labels, &values);
            let cfg = AbaeConfig {
                budget,
                exec: ExecOptions::new(8, batch),
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(3);
            let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
            assert_eq!(r.oracle_calls, expected, "budget {budget} batch {batch}");
            assert_eq!(oracle.calls(), expected);
        }
    }
}

fn group_table(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut key = Vec::with_capacity(n);
    let mut labels: Vec<Vec<bool>> = (0..2).map(|_| Vec::with_capacity(n)).collect();
    let mut proxies: Vec<Vec<f64>> = (0..2).map(|_| Vec::with_capacity(n)).collect();
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen();
        let group = if u < 0.2 {
            Some(0u16)
        } else if u < 0.45 {
            Some(1)
        } else {
            None
        };
        key.push(group);
        for g in 0..2u16 {
            let member = group == Some(g);
            labels[g as usize].push(member);
            proxies[g as usize].push(if member {
                rng.gen_range(0.55..1.0)
            } else {
                rng.gen_range(0.0..0.45)
            });
        }
        values.push(group.map(|g| 5.0 + g as f64).unwrap_or(0.0) + rng.gen_range(0.0..1.0));
    }
    Table::builder("grp", values)
        .predicate("g0", std::mem::take(&mut labels[0]), std::mem::take(&mut proxies[0]))
        .predicate("g1", std::mem::take(&mut labels[1]), std::mem::take(&mut proxies[1]))
        .group_key(vec!["g0".into(), "g1".into()], key)
        .build()
        .unwrap()
}

/// MultiPred evaluates the whole boolean expression as ONE invocation per
/// record; under largest-remainder rounding the expression oracle spends
/// exactly the budget at every batch size.
#[test]
fn multipred_charges_one_invocation_per_record() {
    let t = group_table(20_000, 4);
    let expr = PredExpr::or(PredExpr::pred(0), PredExpr::pred(1));
    for batch in BATCHES {
        let cfg = AbaeConfig {
            budget: 1501,
            rounding: Rounding::LargestRemainder,
            bootstrap: abae::core::BootstrapConfig { trials: 40, alpha: 0.05 },
            exec: ExecOptions::new(8, batch),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let r = run_multipred(&t, &expr, &cfg, Aggregate::Avg, &mut rng).unwrap();
        assert_eq!(r.oracle_calls, 1501, "batch {batch}");
    }
}

/// Single-oracle group-by: the label cache charges each distinct record
/// once; total spend never exceeds the budget and is identical across
/// batch sizes and thread counts.
#[test]
fn groupby_single_oracle_spend_is_batch_invariant_and_bounded() {
    let t = group_table(25_000, 6);
    let proxies: Vec<&[f64]> = t.predicates().iter().map(|p| p.proxy()).collect();
    let budget = 3000usize;
    let mut reference: Option<u64> = None;
    for threads in THREADS {
        for batch in BATCHES {
            let oracle = SingleGroupOracle::new(&t).unwrap();
            let cfg = GroupByConfig {
                budget,
                exec: ExecOptions::new(threads, batch),
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(8);
            groupby_single_oracle(&proxies, &oracle, &cfg, &mut rng).unwrap();
            let spent = oracle.calls();
            assert!(spent <= budget as u64, "spent {spent} over budget {budget}");
            assert!(spent >= (budget / 2) as u64, "pilot alone is half the budget");
            match reference {
                None => reference = Some(spent),
                Some(r) => assert_eq!(spent, r, "threads {threads} batch {batch}"),
            }
        }
    }
}

/// Multi-oracle group-by: per-group oracles sum to at most the budget,
/// identically across batch sizes and thread counts.
#[test]
fn groupby_multi_oracle_spend_is_batch_invariant_and_bounded() {
    let t = group_table(25_000, 9);
    let proxies: Vec<&[f64]> = t.predicates().iter().map(|p| p.proxy()).collect();
    let budget = 3001usize;
    let mut reference: Option<u64> = None;
    for threads in THREADS {
        for batch in BATCHES {
            let o0 = PredicateOracle::new(&t, "g0").unwrap();
            let o1 = PredicateOracle::new(&t, "g1").unwrap();
            let cfg = GroupByConfig {
                budget,
                exec: ExecOptions::new(threads, batch),
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(10);
            groupby_multi_oracle(&proxies, &[&o0, &o1], &cfg, &mut rng).unwrap();
            let spent = o0.calls() + o1.calls();
            assert!(spent <= budget as u64, "spent {spent} over budget {budget}");
            match reference {
                None => reference = Some(spent),
                Some(r) => assert_eq!(spent, r, "threads {threads} batch {batch}"),
            }
        }
    }
}

/// Spend attribution survives cross-session coalescing: two sessions'
/// full ABae runs share device invocations through one batcher, yet each
/// session's per-instance counter, its `oracle_calls` accounting, and the
/// batcher's per-session ledger all agree exactly — and match a serial
/// governor-less replay bit for bit.
#[test]
fn coalesced_sessions_keep_per_session_spend_exact() {
    use abae::core::{BatcherOptions, GovernedOracle, OracleBatcher};
    let (scores, labels, values) = population(30_000, 12);
    let budgets = [997usize, 1409];

    let run = |batcher: Option<&OracleBatcher>, session: u64, budget: usize| {
        let oracle = GovernedOracle::new(
            oracle_for(&labels, &values),
            batcher,
            "emails/is_spam",
            session,
        );
        let cfg = AbaeConfig {
            budget,
            rounding: Rounding::LargestRemainder,
            exec: ExecOptions::new(1, 64),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(100 + session);
        let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        assert_eq!(oracle.calls(), r.oracle_calls, "per-instance counter disagrees");
        r
    };

    let serial: Vec<_> = budgets
        .iter()
        .enumerate()
        .map(|(i, &budget)| run(None, i as u64 + 1, budget))
        .collect();

    let batcher = OracleBatcher::new(
        BatcherOptions::default()
            .with_coalesce(true)
            .with_invocation_overhead(std::time::Duration::from_micros(50))
            .with_max_batch_records(128),
    );
    let coalesced: Vec<_> = std::thread::scope(|scope| {
        let join: Vec<_> = budgets
            .iter()
            .enumerate()
            .map(|(i, &budget)| {
                let batcher = &batcher;
                scope.spawn(move || run(Some(batcher), i as u64 + 1, budget))
            })
            .collect();
        join.into_iter().map(|h| h.join().expect("session thread")).collect()
    });

    assert_eq!(serial, coalesced, "coalescing must not change any result");
    let ledger: std::collections::BTreeMap<u64, u64> =
        batcher.per_session_spend().into_iter().collect();
    for (i, (&budget, result)) in budgets.iter().zip(&coalesced).enumerate() {
        assert_eq!(result.oracle_calls, budget as u64);
        assert_eq!(
            ledger.get(&(i as u64 + 1)),
            Some(&result.oracle_calls),
            "ledger entry for session {}",
            i + 1
        );
    }
}

/// The atomic counter is exact under concurrent batches — the property the
/// whole suite's accounting rests on.
#[test]
fn atomic_counter_is_exact_under_parallel_labeling() {
    let oracle = FnOracle::new(|i: usize| Labeled { matches: i % 2 == 0, value: i as f64 });
    let ids: Vec<usize> = (0..10_000).collect();
    let labels = abae::core::pipeline::label_all(&oracle, &ids, &ExecOptions::new(8, 17));
    assert_eq!(labels.len(), 10_000);
    assert_eq!(oracle.calls(), 10_000);
    oracle.reset_calls();
    assert_eq!(oracle.calls(), 0);
}
