//! Row-vs-columnar differential suite: the pin that holds the storage
//! refactor honest.
//!
//! The columnar layout (packed label bitmaps, dictionary-encoded groups,
//! arena strings, Arc-shared vectors) exists for scan speed; correctness
//! demands it be **invisible**. Three storage variants of the same logical
//! table —
//!
//! 1. `built` — constructed directly through `TableBuilder`,
//! 2. `rows` — shredded to owned [`RowRecord`]s via the compatibility row
//!    view and reassembled with `Table::from_rows`,
//! 3. `binary` — saved to the `.abcol` on-disk format and loaded back —
//!
//! must produce **bit-identical** estimates, confidence intervals, and
//! oracle spend from every executor (two-stage multi-aggregate, multi-
//! predicate, group-by, adaptive, progressive snapshots), under every
//! scheduling configuration (threads × batch size). Any divergence means
//! the storage path leaked into the math.
//!
//! The scheduling matrix here mirrors CI's `ABAE_THREADS`/`ABAE_BATCH`
//! jobs: threads ∈ {1, 8} × batch ∈ {1, 4096}.

use abae::core::adaptive::{run_adaptive, AdaptiveConfig};
use abae::core::groupby::{groupby_single_oracle, GroupByConfig};
use abae::core::multipred::{run_multipred, PredExpr};
use abae::core::pipeline::ExecOptions;
use abae::core::{
    run_abae_multi_progressive, run_abae_multi_with_ci, AbaeConfig, Aggregate, BootstrapConfig,
    ProgressiveOptions, Snapshot,
};
use abae::data::{Oracle, PredicateOracle, SingleGroupOracle, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The scheduling matrix (mirrors the CI thread/chunk matrix jobs).
const THREADS: [usize; 2] = [1, 8];
const BATCHES: [usize; 2] = [1, 4096];

/// A table exercising every column type: statistic, three predicates with
/// proxy-correlated labels, a three-group dictionary key with unkeyed
/// records, and a text column.
fn rich_table(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(n);
    let mut labels: Vec<Vec<bool>> = (0..3).map(|_| Vec::with_capacity(n)).collect();
    let mut proxies: Vec<Vec<f64>> = (0..3).map(|_| Vec::with_capacity(n)).collect();
    let mut key = Vec::with_capacity(n);
    let mut texts = Vec::with_capacity(n);
    for i in 0..n {
        stats.push(rng.gen_range(0.0..40.0));
        for p in 0..3 {
            let s: f64 = rng.gen();
            proxies[p].push(s);
            labels[p].push(rng.gen::<f64>() < 0.15 + 0.7 * s);
        }
        let u: f64 = rng.gen();
        key.push(if u < 0.2 {
            Some(0u16)
        } else if u < 0.45 {
            Some(1)
        } else if u < 0.55 {
            Some(2)
        } else {
            None
        });
        texts.push(if i % 7 == 0 { String::new() } else { format!("récord {i}") });
    }
    let mut b = Table::builder("differential", stats);
    for (p, name) in ["p0", "p1", "p2"].iter().enumerate() {
        b = b.predicate(*name, std::mem::take(&mut labels[p]), std::mem::take(&mut proxies[p]));
    }
    b.group_key(vec!["a".into(), "b".into(), "c".into()], key)
        .texts(texts)
        .build()
        .expect("valid table")
}

/// The three storage variants of one logical table.
fn variants(t: &Table) -> Vec<(&'static str, Table)> {
    let schema = t.schema();
    let rows = Table::from_rows(t.name(), &schema, t.rows()).expect("row roundtrip");
    let dir = std::env::temp_dir().join(format!("abae-columnar-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{}.abcol", t.name()));
    t.save_binary(&path).expect("save");
    let binary = Table::load_binary(t.name(), &path).expect("load");
    let _ = std::fs::remove_file(&path);
    vec![("built", t.clone()), ("rows", rows), ("binary", binary)]
}

/// Asserts two multi-aggregate results agree to the bit.
fn assert_same_multi(
    reference: &abae::core::MultiAggResult,
    got: &abae::core::MultiAggResult,
    what: &str,
) {
    assert_eq!(reference.oracle_calls, got.oracle_calls, "{what}: oracle_calls differ");
    assert_eq!(reference.answers.len(), got.answers.len(), "{what}: answer count differs");
    for (a, b) in reference.answers.iter().zip(&got.answers) {
        assert_eq!(a.agg, b.agg, "{what}: aggregate order differs");
        assert_eq!(
            a.estimate.to_bits(),
            b.estimate.to_bits(),
            "{what}: {:?} estimate differs ({} vs {})",
            a.agg,
            a.estimate,
            b.estimate
        );
        match (&a.ci, &b.ci) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.lo.to_bits(), y.lo.to_bits(), "{what}: CI lo differs");
                assert_eq!(x.hi.to_bits(), y.hi.to_bits(), "{what}: CI hi differs");
            }
            _ => panic!("{what}: CI presence differs"),
        }
    }
}

#[test]
fn storage_variants_are_equal_tables() {
    let t = rich_table(4000, 0xD1FF);
    for (name, v) in variants(&t) {
        assert_eq!(v, t, "variant {name} is not the same logical table");
    }
}

#[test]
fn two_stage_is_storage_and_schedule_invariant() {
    let t = rich_table(4000, 1);
    let aggs = [Aggregate::Avg, Aggregate::Sum, Aggregate::Count];
    let run = |table: &Table, threads: usize, batch: usize| {
        let oracle = PredicateOracle::new(table, "p0").expect("predicate");
        let scores = table.predicate("p0").expect("predicate").proxy();
        let cfg = AbaeConfig {
            strata: 4,
            budget: 900,
            bootstrap: BootstrapConfig { trials: 60, alpha: 0.05 },
            exec: ExecOptions::new(threads, batch),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0xABAE);
        run_abae_multi_with_ci(scores, &oracle, &cfg, &aggs, &mut rng).expect("valid config")
    };
    let reference = run(&t, 1, 64);
    for (name, v) in variants(&t) {
        for threads in THREADS {
            for batch in BATCHES {
                let what = format!("two_stage/{name}/t{threads}/b{batch}");
                assert_same_multi(&reference, &run(&v, threads, batch), &what);
            }
        }
    }
}

#[test]
fn multipred_is_storage_and_schedule_invariant() {
    let t = rich_table(4000, 2);
    let expr = PredExpr::or(
        PredExpr::and(PredExpr::pred(0), PredExpr::not(PredExpr::pred(1))),
        PredExpr::pred(2),
    );
    let run = |table: &Table, threads: usize, batch: usize| {
        let cfg = AbaeConfig {
            budget: 800,
            bootstrap: BootstrapConfig { trials: 40, alpha: 0.05 },
            exec: ExecOptions::new(threads, batch),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        run_multipred(table, &expr, &cfg, Aggregate::Avg, &mut rng).expect("valid query")
    };
    let reference = run(&t, 1, 64);
    for (name, v) in variants(&t) {
        for threads in THREADS {
            for batch in BATCHES {
                let what = format!("multipred/{name}/t{threads}/b{batch}");
                let got = run(&v, threads, batch);
                assert_eq!(reference.oracle_calls, got.oracle_calls, "{what}: calls");
                assert_eq!(
                    reference.estimate.to_bits(),
                    got.estimate.to_bits(),
                    "{what}: estimate"
                );
            }
        }
    }
}

#[test]
fn groupby_is_storage_and_schedule_invariant() {
    let t = rich_table(5000, 3);
    let run = |table: &Table, threads: usize, batch: usize| {
        let proxies: Vec<&[f64]> = table.predicates().iter().map(|p| p.proxy()).collect();
        let oracle = SingleGroupOracle::new(table).expect("grouped table");
        let cfg = GroupByConfig {
            budget: 1500,
            exec: ExecOptions::new(threads, batch),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0x9B);
        let ests = groupby_single_oracle(&proxies, &oracle, &cfg, &mut rng).expect("valid");
        (ests, oracle.calls())
    };
    let (ref_ests, ref_calls) = run(&t, 1, 64);
    for (name, v) in variants(&t) {
        for threads in THREADS {
            for batch in BATCHES {
                let what = format!("groupby/{name}/t{threads}/b{batch}");
                let (ests, calls) = run(&v, threads, batch);
                assert_eq!(calls, ref_calls, "{what}: calls");
                assert_eq!(ests.len(), ref_ests.len(), "{what}: group count");
                for (a, b) in ref_ests.iter().zip(&ests) {
                    assert_eq!(a.group, b.group, "{what}: group order");
                    assert_eq!(
                        a.estimate.to_bits(),
                        b.estimate.to_bits(),
                        "{what}: group {} estimate",
                        a.group
                    );
                }
            }
        }
    }
}

#[test]
fn adaptive_is_storage_and_schedule_invariant() {
    let t = rich_table(3000, 4);
    let run = |table: &Table, threads: usize, batch: usize| {
        let oracle = PredicateOracle::new(table, "p1").expect("predicate");
        let scores = table.predicate("p1").expect("predicate").proxy();
        let cfg = AdaptiveConfig {
            budget: 700,
            warmup_per_stratum: 10,
            exec: ExecOptions::new(threads, batch),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0xADA);
        run_adaptive(scores, &oracle, &cfg, Aggregate::Avg, &mut rng).expect("valid config")
    };
    let reference = run(&t, 1, 64);
    for (name, v) in variants(&t) {
        for threads in THREADS {
            for batch in BATCHES {
                let what = format!("adaptive/{name}/t{threads}/b{batch}");
                let got = run(&v, threads, batch);
                assert_eq!(reference.oracle_calls, got.oracle_calls, "{what}: calls");
                assert_eq!(
                    reference.estimate.to_bits(),
                    got.estimate.to_bits(),
                    "{what}: estimate"
                );
                assert_eq!(reference.samples, got.samples, "{what}: per-stratum samples");
            }
        }
    }
}

#[test]
fn progressive_snapshots_are_storage_invariant() {
    let t = rich_table(3000, 5);
    let aggs = [Aggregate::Avg];
    // Snapshot cadence is fixed by an explicit chunk so the *number* of
    // snapshots is part of the contract too.
    let run = |table: &Table, threads: usize, batch: usize| {
        let oracle = PredicateOracle::new(table, "p2").expect("predicate");
        let scores = table.predicate("p2").expect("predicate").proxy();
        let cfg = AbaeConfig {
            strata: 3,
            budget: 600,
            bootstrap: BootstrapConfig { trials: 40, alpha: 0.05 },
            exec: ExecOptions::new(threads, batch),
            ..Default::default()
        };
        let prog = ProgressiveOptions { chunk: Some(100), target_ci_width: None };
        let mut rng = StdRng::seed_from_u64(0x9109);
        let mut snaps: Vec<Snapshot> = Vec::new();
        let result =
            run_abae_multi_progressive(scores, &oracle, &cfg, &aggs, &prog, &mut rng, |s| {
                snaps.push(s.clone())
            })
            .expect("valid config");
        (result, snaps)
    };
    let (ref_result, ref_snaps) = run(&t, 1, 64);
    for (name, v) in variants(&t) {
        for threads in THREADS {
            for batch in BATCHES {
                let what = format!("progressive/{name}/t{threads}/b{batch}");
                let (result, snaps) = run(&v, threads, batch);
                assert_same_multi(&ref_result, &result, &what);
                assert_eq!(snaps.len(), ref_snaps.len(), "{what}: snapshot count");
                for (i, (a, b)) in ref_snaps.iter().zip(&snaps).enumerate() {
                    assert_eq!(a.budget_spent, b.budget_spent, "{what}: snap {i} budget");
                    assert_eq!(a.done, b.done, "{what}: snap {i} done flag");
                    for (x, y) in a.answers.iter().zip(&b.answers) {
                        assert_eq!(
                            x.estimate.to_bits(),
                            y.estimate.to_bits(),
                            "{what}: snap {i} estimate"
                        );
                    }
                }
            }
        }
    }
}

/// The vectorized score/eval kernels agree with per-record scalar math on
/// inputs reconstructed through the row view — the two compatibility
/// surfaces cross-check each other.
#[test]
fn kernels_agree_between_row_view_and_columns() {
    let t = rich_table(2500, 6);
    let expr = PredExpr::or(
        PredExpr::not(PredExpr::and(PredExpr::pred(0), PredExpr::pred(2))),
        PredExpr::pred(1),
    );

    // Row path: shred to owned records, rebuild per-predicate vectors.
    let rows: Vec<_> = t.rows().collect();
    let row_proxies: Vec<Vec<f64>> =
        (0..3).map(|p| rows.iter().map(|r| r.proxies[p]).collect()).collect();
    let row_views: Vec<&[f64]> = row_proxies.iter().map(|v| v.as_slice()).collect();
    let row_scores: Vec<f64> = (0..t.len()).map(|i| expr.score_at(&row_views, i)).collect();
    let row_truth: Vec<bool> =
        (0..t.len()).map(|i| expr.evaluate(&|p| rows[i].labels[p])).collect();

    // Columnar path: vectorized kernels straight off the columns.
    let col_views: Vec<&[f64]> = t.predicates().iter().map(|p| p.proxy()).collect();
    let col_scores = expr.combined_scores_vec(&col_views);
    let bitmaps: Vec<_> = t.predicates().iter().map(|p| p.labels().bitmap()).collect();
    let col_truth = expr.eval_bitmap(&bitmaps);

    for i in 0..t.len() {
        assert_eq!(
            row_scores[i].to_bits(),
            col_scores[i].to_bits(),
            "score diverges at record {i}"
        );
        assert_eq!(row_truth[i], col_truth.get(i), "truth diverges at record {i}");
    }
}
