//! Integration test: an emulated dataset survives a CSV round trip and
//! yields the same exact answers and equivalent query behaviour — the
//! ingestion path a user with real exported data would take.

use abae::data::csvio::{read_table, write_table};
use abae::data::emulators::{celeba_groupby, trec05p, EmulatorOptions};
use abae::query::Engine;

#[test]
fn emulated_table_roundtrips_through_csv() {
    let original = trec05p(&EmulatorOptions { scale: 0.01, seed: 5 });
    let mut buf = Vec::new();
    write_table(&original, &mut buf).expect("serialize");
    let reparsed = read_table("trec05p", buf.as_slice()).expect("parse back");

    assert_eq!(original.len(), reparsed.len());
    assert_eq!(
        original.exact_avg("is_spam").unwrap(),
        reparsed.exact_avg("is_spam").unwrap()
    );
    assert_eq!(
        original.positive_rate("is_spam").unwrap(),
        reparsed.positive_rate("is_spam").unwrap()
    );
    // Text payloads (the generated token streams) survive quoting.
    assert_eq!(original.texts().unwrap(), reparsed.texts().unwrap());
}

#[test]
fn grouped_table_roundtrips_with_group_key() {
    let original = celeba_groupby(&EmulatorOptions { scale: 0.01, seed: 6 });
    let mut buf = Vec::new();
    write_table(&original, &mut buf).expect("serialize");
    let reparsed = read_table("celeba-groupby", buf.as_slice()).expect("parse back");
    // The reader assigns group ids by order of appearance, so ids may
    // permute; compare per-*name* aggregates instead of raw keys.
    let avg_by_name = |t: &abae::data::Table| -> Vec<(String, f64, f64)> {
        let gk = t.group_key().expect("grouped table");
        let mut rows: Vec<(String, f64, f64)> = gk
            .names()
            .iter()
            .enumerate()
            .map(|(g, name)| {
                (
                    name.clone(),
                    t.exact_group_avg(g as u16).expect("group exists"),
                    t.exact_group_count(g as u16).expect("group exists"),
                )
            })
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    };
    assert_eq!(avg_by_name(&original), avg_by_name(&reparsed));
}

#[test]
fn queries_on_reloaded_table_behave_identically() {
    let original = trec05p(&EmulatorOptions { scale: 0.01, seed: 7 });
    let mut buf = Vec::new();
    write_table(&original, &mut buf).expect("serialize");
    let reparsed = read_table("trec05p", buf.as_slice()).expect("parse back");

    let run = |table: abae::data::Table| {
        // Identically seeded engines replay identical session streams, so
        // the original and the reloaded table see the same draws.
        let engine = Engine::builder().table(table).bootstrap_trials(50).seed(11).build();
        engine
            .session_with_id(0)
            .execute("SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 800")
            .expect("query executes")
    };
    // Proxy values may lose a few ULPs in decimal formatting, but the
    // sampled record set and oracle answers are identical, so estimates
    // must agree to high precision.
    let a = run(original);
    let b = run(reparsed);
    assert!((a.estimate() - b.estimate()).abs() < 1e-9, "{} vs {}", a.estimate(), b.estimate());
}
