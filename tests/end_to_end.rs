//! Integration tests spanning the whole stack: emulators (abae-data) →
//! SQL frontend (abae-query) → core algorithms (abae-core) → statistics
//! (abae-stats).

use abae::core::config::{AbaeConfig, Aggregate};
use abae::core::{run_abae_with_ci, run_uniform};
use abae::data::emulators::{night_street, trec05p, EmulatorOptions};
use abae::data::PredicateOracle;
use abae::query::Engine;
use abae::stats::metrics::rmse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn opts() -> EmulatorOptions {
    EmulatorOptions { scale: 0.03, seed: 42 }
}

#[test]
fn sql_query_over_emulated_dataset_converges() {
    let emails = trec05p(&opts());
    let exact = emails.exact_avg("is_spam").unwrap();
    let engine = Engine::builder().table(emails).bootstrap_trials(200).seed(1).build();
    let mut session = engine.session();

    let mut covered = 0;
    let trials = 20;
    let mut estimates = Vec::new();
    for _ in 0..trials {
        let r = session
            .execute(
                "SELECT AVG(nb_links) FROM trec05p WHERE is_spam \
                 ORACLE LIMIT 4000 WITH PROBABILITY 0.95",
            )
            .expect("query executes");
        assert!(r.oracle_calls <= 4000);
        estimates.push(r.estimate());
        if r.ci().expect("scalar query CI").contains(exact) {
            covered += 1;
        }
    }
    // Estimates are consistent and CIs cover the truth most of the time.
    assert!(rmse(&estimates, exact) / exact < 0.15, "rmse too high");
    assert!(covered >= 16, "coverage {covered}/{trials}");
}

#[test]
fn abae_beats_uniform_on_an_emulated_dataset() {
    let video = night_street(&opts());
    let exact = video.exact_avg("has_car").unwrap();
    let scores = video.predicate("has_car").unwrap().proxy().to_vec();
    let mut rng = StdRng::seed_from_u64(2);
    let trials = 40;
    let cfg = AbaeConfig { budget: 2000, ..Default::default() };

    let mut abae_est = Vec::new();
    let mut uniform_est = Vec::new();
    for _ in 0..trials {
        let oracle = PredicateOracle::new(&video, "has_car").unwrap();
        let r = run_abae_with_ci(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        abae_est.push(r.estimate);
        let oracle = PredicateOracle::new(&video, "has_car").unwrap();
        uniform_est.push(
            run_uniform(video.len(), &oracle, 2000, Aggregate::Avg, &mut rng).estimate,
        );
    }
    let abae_rmse = rmse(&abae_est, exact);
    let uniform_rmse = rmse(&uniform_est, exact);
    assert!(
        abae_rmse < uniform_rmse,
        "ABae {abae_rmse} should beat uniform {uniform_rmse}"
    );
}

#[test]
fn same_seed_same_answer_across_the_stack() {
    let run = |seed: u64| {
        let emails = trec05p(&opts());
        let engine = Engine::builder().table(emails).bootstrap_trials(50).seed(seed).build();
        engine
            .session()
            .execute("SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 1000")
            .expect("query executes")
    };
    let a = run(7);
    let b = run(7);
    let c = run(8);
    assert_eq!(a, b, "same seed must reproduce exactly");
    assert_ne!(a.estimate(), c.estimate(), "different seeds should differ");
}

#[test]
fn count_and_sum_aggregates_match_ground_truth_scale() {
    let video = night_street(&opts());
    let exact_count = video.exact_count("has_car").unwrap();
    let exact_sum = video.exact_sum("has_car").unwrap();
    let engine = Engine::builder().table(video).bootstrap_trials(100).seed(3).build();
    let mut session = engine.session();

    let count = session
        .execute("SELECT COUNT(*) FROM night-street WHERE has_car ORACLE LIMIT 5000")
        .expect("query executes");
    assert!(
        (count.estimate() - exact_count).abs() / exact_count < 0.1,
        "count {} vs {exact_count}",
        count.estimate()
    );

    let sum = session
        .execute("SELECT SUM(cars) FROM night-street WHERE has_car ORACLE LIMIT 5000")
        .expect("query executes");
    assert!(
        (sum.estimate() - exact_sum).abs() / exact_sum < 0.1,
        "sum {} vs {exact_sum}",
        sum.estimate()
    );
}
