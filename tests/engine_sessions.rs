//! Engine/Session/Prepared acceptance tests — the concurrent-serving
//! contract of the query layer:
//!
//! * an [`Engine`] is `Send + Sync`; 8 sessions driven from 8 threads
//!   against one shared engine (label cache **on**) produce per-session
//!   results **bit-identical** to the same sessions run serially, because
//!   each session's RNG stream depends only on (engine seed, session id,
//!   its own statement sequence) — never on interleaving;
//! * cache accounting stays consistent under concurrency: total lookups
//!   (hits + misses) equal the serial run's, and every verdict in the
//!   store was paid for by exactly one oracle call;
//! * a [`Prepared`] statement re-runs with zero re-parsing and — cache
//!   warm — zero oracle calls, and a re-run under a **new** budget spends
//!   the oracle only on records the store has not seen (exactly the
//!   delta).

use abae::data::Table;
use abae::query::{Engine, QueryResult};
use std::thread;

/// 20k records, ~25% positive, deterministic layout.
fn spam_table(n: usize) -> Table {
    let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
    let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
    Table::builder("emails", values)
        .predicate("is_spam", labels, proxy)
        .build()
        .unwrap()
}

fn engine(seed: u64, cache: bool) -> Engine {
    Engine::builder()
        .table(spam_table(20_000))
        .bootstrap_trials(100)
        .label_cache(cache)
        .seed(seed)
        .build()
}

/// Each session runs a statement mix chosen by its id — different
/// aggregates, budgets, and probabilities, so sessions genuinely differ.
fn statement_mix(session_id: u64) -> Vec<String> {
    let budget = 1000 + 500 * (session_id % 3);
    vec![
        format!(
            "SELECT AVG(nb_links) FROM emails WHERE is_spam ORACLE LIMIT {budget} \
             WITH PROBABILITY 0.95"
        ),
        format!(
            "SELECT COUNT(*), SUM(nb_links) FROM emails WHERE is_spam ORACLE LIMIT {} \
             WITH PROBABILITY 0.9",
            budget / 2
        ),
        "SELECT PERCENTAGE(x) FROM emails WHERE is_spam ORACLE LIMIT 800".to_string(),
    ]
}

/// Runs sessions 0..n serially on one fresh engine, returning per-session
/// results plus the store's lifetime (hits, misses).
fn run_serial(n: u64, seed: u64) -> (Vec<Vec<QueryResult>>, (u64, u64)) {
    let engine = engine(seed, true);
    let results = (0..n)
        .map(|id| {
            let mut session = engine.session();
            assert_eq!(session.id(), id, "auto ids are sequential");
            statement_mix(id)
                .iter()
                .map(|sql| session.execute(sql).expect("query executes"))
                .collect()
        })
        .collect();
    let store = engine.label_store().expect("cache on");
    (results, (store.hits(), store.misses()))
}

/// Runs sessions 0..n concurrently (one thread each) on one fresh engine.
fn run_concurrent(n: u64, seed: u64) -> (Vec<Vec<QueryResult>>, (u64, u64)) {
    let engine = engine(seed, true);
    // Sessions created up front, in order, so ids match the serial run.
    let mut sessions: Vec<_> = (0..n).map(|_| engine.session()).collect();
    let results = thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter_mut()
            .map(|session| {
                scope.spawn(|| {
                    let mix = statement_mix(session.id());
                    mix.iter()
                        .map(|sql| session.execute(sql).expect("query executes"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session thread")).collect()
    });
    let store = engine.label_store().expect("cache on");
    (results, (store.hits(), store.misses()))
}

#[test]
fn eight_concurrent_sessions_match_serial_execution_bit_for_bit() {
    let (serial, (s_hits, s_misses)) = run_serial(8, 0xC0FFEE);
    let (concurrent, (c_hits, c_misses)) = run_concurrent(8, 0xC0FFEE);

    for (id, (s, c)) in serial.iter().zip(&concurrent).enumerate() {
        assert_eq!(s.len(), c.len());
        for (a, b) in s.iter().zip(c) {
            // Estimates, CIs, and group rows are the *results*; they must
            // be bit-identical however the 8 sessions interleaved.
            assert_eq!(a.rows, b.rows, "session {id} diverged under concurrency");
            assert_eq!(a.groups, b.groups, "session {id} groups diverged");
        }
    }

    // Cache-lookup totals are interleaving-invariant: the same draws were
    // made, each either hit or missed.
    assert_eq!(
        s_hits + s_misses,
        c_hits + c_misses,
        "total store lookups must not depend on interleaving"
    );
    // Concurrency can only *lose* sharing (two sessions racing to label
    // the same record both miss); it can never invent hits.
    assert!(c_hits <= s_hits, "concurrent hits {c_hits} > serial hits {s_hits}");
    assert!(s_misses > 0 && s_hits > 0, "the workload must actually exercise the cache");
}

#[test]
fn per_session_accounting_sums_to_the_store_totals() {
    let (results, (hits, misses)) = run_concurrent(4, 0xBEEF);
    let (mut sum_hits, mut sum_misses, mut sum_calls) = (0, 0, 0);
    for per_session in &results {
        for r in per_session {
            sum_hits += r.cache_hits;
            sum_misses += r.cache_misses;
            sum_calls += r.oracle_calls;
        }
    }
    assert_eq!(sum_hits, hits, "per-result hits must sum to the store's lifetime hits");
    assert_eq!(sum_misses, misses, "per-result misses must sum to the store's misses");
    // With the store on, every oracle call is a miss: each cached verdict
    // was paid for exactly once.
    assert_eq!(sum_calls, sum_misses, "oracle spend must equal cache misses");
}

#[test]
fn concurrent_results_equal_uncached_results() {
    // The cache changes spend accounting, never answers: the concurrent
    // cached run must match a serial run with the cache disabled.
    let (cached, _) = run_concurrent(4, 0xABBA);
    let engine = engine(0xABBA, false);
    for id in 0..4u64 {
        let mut session = engine.session();
        for (sql, cached_result) in statement_mix(id).iter().zip(&cached[id as usize]) {
            let fresh = session.execute(sql).expect("query executes");
            assert_eq!(fresh.rows, cached_result.rows, "session {id}");
            assert_eq!((fresh.cache_hits, fresh.cache_misses), (0, 0));
        }
    }
}

#[test]
fn prepared_statement_rerun_is_free_when_the_cache_is_warm() {
    let engine = engine(0xF00D, true);
    let mut session = engine.session();
    let stmt = session
        .prepare(
            "SELECT AVG(nb_links) FROM emails WHERE is_spam ORACLE LIMIT 2000 \
             WITH PROBABILITY 0.95",
        )
        .expect("statement plans");

    let cold = stmt.run().expect("first run");
    assert!(cold.oracle_calls > 0, "cold run pays the oracle");
    assert_eq!(cold.cache_misses, cold.oracle_calls);

    // Re-run: zero re-parsing by construction (the plan is owned), zero
    // oracle calls because the replayed draws are all cached.
    let warm = stmt.run().expect("second run");
    assert_eq!(warm.oracle_calls, 0, "a warm re-run must be answered entirely from cache");
    assert_eq!(warm.cache_hits, cold.cache_misses);
    assert_eq!(warm.rows, cold.rows, "replayed results are bit-identical");
}

#[test]
fn rebudgeted_prepared_run_spends_exactly_the_delta_on_unseen_records() {
    let engine = engine(0xD1CE, true);
    let store = engine.label_store().expect("cache on");
    let mut session = engine.session();
    let stmt = session
        .prepare("SELECT AVG(nb_links) FROM emails WHERE is_spam ORACLE LIMIT ?")
        .expect("statement plans");

    let small = stmt.clone().with_budget(1500).run().expect("small budget runs");
    assert_eq!(small.oracle_calls, small.cache_misses);
    let verdicts_after_small = store.misses();

    // Re-run the same plan at a bigger budget: every record the small run
    // already labeled is free; the oracle is charged once per *unseen*
    // record — exactly the store's growth.
    let big = stmt.clone().with_budget(3000).run().expect("big budget runs");
    assert_eq!(
        big.oracle_calls, big.cache_misses,
        "spend must be exactly the unseen-record count"
    );
    assert!(big.cache_hits > 0, "a superset budget must reuse the small run's verdicts");
    assert_eq!(
        store.misses(),
        verdicts_after_small + big.oracle_calls,
        "store growth must equal the delta the big run paid for"
    );

    // Determinism: the rebudgeted run replays exactly on a fresh binding.
    let again = stmt.with_budget(3000).run().expect("replay runs");
    assert_eq!(again.rows, big.rows);
    assert_eq!(again.oracle_calls, 0, "the replay is now fully cached");
}

#[test]
fn sessions_replay_on_an_identically_built_engine() {
    // Two engines built the same way are behaviorally identical: session
    // id k replays the same stream on both — the property that makes the
    // serial/concurrent comparison above meaningful.
    let a = engine(42, true);
    let b = engine(42, true);
    for id in [0u64, 3, 7] {
        let ra = a.session_with_id(id).execute(&statement_mix(id)[0]).unwrap();
        let rb = b.session_with_id(id).execute(&statement_mix(id)[0]).unwrap();
        assert_eq!(ra.rows, rb.rows, "session {id}");
    }
    // A different engine seed shifts every session stream.
    let c = engine(43, true);
    let r42 = a.session_with_id(0).execute(&statement_mix(0)[0]).unwrap();
    let r43 = c.session_with_id(0).execute(&statement_mix(0)[0]).unwrap();
    assert_ne!(r42.estimate(), r43.estimate(), "engine seed must matter");
}

#[test]
fn prepared_statements_can_run_from_many_threads() {
    // Prepared is Send + Sync: a worker pool can serve one statement.
    let engine = engine(0xAB, true);
    let stmt = engine
        .session()
        .prepare("SELECT COUNT(*) FROM emails WHERE is_spam ORACLE LIMIT 1200")
        .expect("statement plans");
    let reference = stmt.run().expect("reference run");
    thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let r = stmt.run().expect("threaded run");
                assert_eq!(r.rows, reference.rows, "every replay is bit-identical");
            });
        }
    });
}
