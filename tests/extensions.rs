//! Integration tests for the beyond-the-paper extensions: the sequential
//! sampler (§4.6 future work), closed-form CIs, the naive Bayes proxy, and
//! EXPLAIN — each exercised across crate boundaries.

use abae::core::adaptive::{run_adaptive, AdaptiveConfig};
use abae::core::config::{AbaeConfig, Aggregate};
use abae::core::normal_ci::closed_form_ci;
use abae::core::strata::Stratification;
use abae::core::two_stage::run_two_stage;
use abae::data::emulators::{night_street, trec05p, EmulatorOptions};
use abae::data::{PredicateOracle, Table};
use abae::ml::metrics::auc;
use abae::ml::NaiveBayes;
use abae::query::Engine;
use abae::stats::metrics::rmse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn opts() -> EmulatorOptions {
    EmulatorOptions { scale: 0.03, seed: 99 }
}

#[test]
fn sequential_sampler_matches_two_stage_on_emulated_data() {
    let video = night_street(&opts());
    let exact = video.exact_avg("has_car").unwrap();
    let scores = video.predicate("has_car").unwrap().proxy().to_vec();
    let mut rng = StdRng::seed_from_u64(1);
    let trials = 30;

    let mut seq_est = Vec::new();
    let mut two_est = Vec::new();
    for _ in 0..trials {
        let oracle = PredicateOracle::new(&video, "has_car").unwrap();
        let run = run_adaptive(
            &scores,
            &oracle,
            &AdaptiveConfig { budget: 1500, ..Default::default() },
            Aggregate::Avg,
            &mut rng,
        )
        .unwrap();
        assert!(run.oracle_calls <= 1500);
        seq_est.push(run.estimate);

        let oracle = PredicateOracle::new(&video, "has_car").unwrap();
        let strat = Stratification::by_proxy_quantile(&scores, 5);
        let run = run_two_stage(
            &strat,
            &oracle,
            &AbaeConfig { budget: 1500, ..Default::default() },
            Aggregate::Avg,
            &mut rng,
        )
        .unwrap();
        two_est.push(run.estimate);
    }
    let seq_rmse = rmse(&seq_est, exact);
    let two_rmse = rmse(&two_est, exact);
    assert!(
        seq_rmse < two_rmse * 1.5,
        "sequential {seq_rmse} should be competitive with two-stage {two_rmse}"
    );
}

#[test]
fn closed_form_ci_covers_on_emulated_data() {
    let video = night_street(&opts());
    let exact = video.exact_avg("has_car").unwrap();
    let scores = video.predicate("has_car").unwrap().proxy().to_vec();
    let strat = Stratification::by_proxy_quantile(&scores, 5);
    let mut rng = StdRng::seed_from_u64(2);
    let trials = 40;
    let mut covered = 0;
    for _ in 0..trials {
        let oracle = PredicateOracle::new(&video, "has_car").unwrap();
        let run = run_two_stage(
            &strat,
            &oracle,
            &AbaeConfig { budget: 2000, ..Default::default() },
            Aggregate::Avg,
            &mut rng,
        )
        .unwrap();
        let ci = closed_form_ci(Aggregate::Avg, &run.strata, 0.05).expect("estimable");
        if ci.contains(exact) {
            covered += 1;
        }
    }
    assert!(covered >= 33, "coverage {covered}/{trials}");
}

#[test]
fn naive_bayes_trained_on_emulated_text_is_a_usable_proxy() {
    // Train NB on the emulated corpus's token streams, score every email,
    // and run ABae with the learned proxy — a full learned-proxy pipeline.
    let emails = trec05p(&opts());
    let texts = emails.texts().expect("trec05p carries text");
    let labels = emails.predicate("is_spam").unwrap().labels_vec();

    // Train on the first 2,000 records (in practice: a labeled subsample).
    let train_docs: Vec<&str> = texts.iter().take(2000).collect();
    let train_labels: Vec<bool> = labels.iter().take(2000).copied().collect();
    let nb = NaiveBayes::fit_text(&train_docs, &train_labels).expect("both classes present");

    let scores: Vec<f64> = texts.iter().map(|t| nb.score_text(t)).collect();
    let nb_auc = auc(&scores, &labels).expect("both classes present");
    assert!(nb_auc > 0.8, "NB proxy AUC {nb_auc}");

    // The learned proxy drives ABae; estimate should be near the truth.
    let exact = emails.exact_avg("is_spam").unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let mut estimates = Vec::new();
    for _ in 0..20 {
        let oracle = PredicateOracle::new(&emails, "is_spam").unwrap();
        let run = abae::core::run_abae(
            &scores,
            &oracle,
            &AbaeConfig { budget: 2000, ..Default::default() },
            Aggregate::Avg,
            &mut rng,
        )
        .unwrap();
        estimates.push(run.estimate);
    }
    assert!(rmse(&estimates, exact) / exact < 0.15);
}

#[test]
fn explain_matches_actual_execution_budget() {
    let t = Table::builder("t", vec![1.0; 1000])
        .predicate("p", vec![true; 1000], vec![0.5; 1000])
        .build()
        .unwrap();
    let engine = Engine::builder().table(t).bootstrap_trials(20).seed(4).build();
    let mut session = engine.session();
    let sql = "SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 600";
    let plan = session.explain(sql).unwrap();
    assert!(plan.contains("600 oracle calls"), "{plan}");
    assert!(plan.contains("stage 1 (5 strata x 60)"), "{plan}");

    let result = session.execute(sql).unwrap();
    assert!(result.oracle_calls <= 600);
}
