//! Oracle-batcher (governor) acceptance tests — the cross-session
//! coalescing contract:
//!
//! * **bit-identity** — per-session estimates, CIs, and oracle-call
//!   accounting are identical with the governor off (serial replay) and
//!   on (concurrent sessions sharing device invocations), at 1/4/8
//!   concurrent sessions, in-process and over the Postgres wire. The
//!   batcher changes invocation grouping and timing only.
//! * **fair-share admission** — a greedy tenant under a per-session
//!   quota cannot starve fair tenants, and the batcher's per-session
//!   spend ledger agrees exactly with each session's own accounting.
//! * **cache-aware scheduling** — label-store hits are served without
//!   consuming batch slots: a warm replay admits nothing and reports its
//!   hits as `cache_served`.
//!
//! The engines here build with default [`ExecOptions`], so CI's
//! `ABAE_THREADS=1/8` matrix exercises every test at both thread counts.

use abae::core::BatcherOptions;
use abae::core::pipeline::ExecOptions;
use abae::data::Table;
use abae::query::{Engine, QueryResult};
use abae::server::{Server, WireClient};
use std::time::Duration;

/// Deterministic corpus: ~25% positives, informative proxy.
fn spam_table(n: usize) -> Table {
    let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
    let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
    Table::builder("emails", values)
        .predicate("is_spam", labels, proxy)
        .build()
        .unwrap()
}

fn engine(seed: u64, governor: bool, overhead: Duration) -> Engine {
    Engine::builder()
        .table(spam_table(20_000))
        .bootstrap_trials(50)
        .seed(seed)
        .governor(governor)
        .oracle_overhead(overhead)
        .build()
}

/// Each session's statement mix depends on its id, so sessions genuinely
/// differ and a cross-session mixup cannot cancel out.
fn statement_mix(session_id: u64) -> Vec<String> {
    let budget = 600 + 150 * (session_id % 3);
    vec![
        format!("SELECT AVG(nb_links) FROM emails WHERE is_spam ORACLE LIMIT {budget}"),
        format!(
            "SELECT COUNT(*), SUM(nb_links) FROM emails WHERE is_spam ORACLE LIMIT {}",
            budget / 2
        ),
    ]
}

/// Runs session ids 1..=n serially, one statement mix each.
fn run_serial(engine: &Engine, sessions: usize) -> Vec<Vec<QueryResult>> {
    (1..=sessions as u64)
        .map(|id| {
            let mut session = engine.session_with_id(id);
            statement_mix(id)
                .iter()
                .map(|sql| session.execute(sql).expect("serial query"))
                .collect()
        })
        .collect()
}

/// Runs the same session ids concurrently, one OS thread each.
fn run_concurrent(engine: &Engine, sessions: usize) -> Vec<Vec<QueryResult>> {
    std::thread::scope(|scope| {
        let join: Vec<_> = (1..=sessions as u64)
            .map(|id| {
                let mut session = engine.session_with_id(id);
                scope.spawn(move || {
                    statement_mix(id)
                        .iter()
                        .map(|sql| session.execute(sql).expect("concurrent query"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        join.into_iter().map(|h| h.join().expect("session thread")).collect()
    })
}

/// The tentpole contract: coalescing under a serialized 50µs device cost
/// changes nothing a session can observe — estimates, CIs, and oracle
/// accounting replay bit-identically against a governor-less serial run,
/// at every concurrency level.
#[test]
fn governed_concurrent_sessions_match_ungoverned_serial_replay() {
    let baseline = engine(42, false, Duration::ZERO);
    let governed = engine(42, true, Duration::from_micros(50));
    for sessions in [1usize, 4, 8] {
        let serial = run_serial(&baseline, sessions);
        let concurrent = run_concurrent(&governed, sessions);
        assert_eq!(
            serial, concurrent,
            "{sessions} governed concurrent sessions must replay the serial results"
        );
    }
    // The governed engine really did route everything through admission:
    // the ledger covers every labeled record, per session.
    let stats = governed.stats();
    let ledger_total: u64 = stats.per_session_spend.iter().map(|&(_, n)| n).sum();
    assert_eq!(ledger_total, stats.batcher.labeled_records);
    assert!(stats.batcher.requests >= stats.batcher.invocations);
    // Every request either rode alone (a solo invocation) or rode in a
    // shared batch (counted in coalesced_requests, leader included).
    assert_eq!(
        stats.batcher.requests,
        (stats.batcher.invocations - stats.batcher.shared_batches)
            + stats.batcher.coalesced_requests,
    );
}

/// GROUP BY routes through the same admission path (its own governor key)
/// and must obey the same bit-identity contract.
fn grouped_table(n: usize) -> Table {
    let key: Vec<Option<u16>> = (0..n)
        .map(|i| match i % 5 {
            0 => Some(0),
            1 => Some(1),
            _ => None,
        })
        .collect();
    let mut labels: Vec<Vec<bool>> = vec![Vec::new(); 2];
    let mut proxies: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for g in &key {
        for j in 0..2u16 {
            let member = *g == Some(j);
            labels[j as usize].push(member);
            proxies[j as usize].push(if member { 0.8 } else { 0.2 });
        }
    }
    let values: Vec<f64> = key
        .iter()
        .enumerate()
        .map(|(i, g)| g.map_or(0.0, |g| 10.0 * (g + 1) as f64) + (i % 3) as f64)
        .collect();
    Table::builder("images", values)
        .predicate("is_gray", std::mem::take(&mut labels[0]), std::mem::take(&mut proxies[0]))
        .predicate("is_blond", std::mem::take(&mut labels[1]), std::mem::take(&mut proxies[1]))
        .group_key(vec!["gray".into(), "blond".into()], key)
        .build()
        .unwrap()
}

#[test]
fn groupby_is_bit_identical_under_the_governor() {
    let build = |governor: bool| {
        Engine::builder()
            .table(grouped_table(10_000))
            .bind_predicate("images", "hair=gray", "is_gray")
            .bind_predicate("images", "hair=blond", "is_blond")
            .bootstrap_trials(50)
            .seed(7)
            .governor(governor)
            .oracle_overhead(if governor { Duration::from_micros(50) } else { Duration::ZERO })
            .build()
    };
    let sql = "SELECT AVG(smile), hair FROM images \
               WHERE hair(img) = 'gray' OR hair(img) = 'blond' \
               GROUP BY hair(img) ORACLE LIMIT 1200";
    let baseline = build(false);
    let governed = build(true);
    let serial: Vec<QueryResult> = (1..=4u64)
        .map(|id| baseline.session_with_id(id).execute(sql).expect("serial group-by"))
        .collect();
    let concurrent: Vec<QueryResult> = std::thread::scope(|scope| {
        let join: Vec<_> = (1..=4u64)
            .map(|id| {
                let mut s = governed.session_with_id(id);
                scope.spawn(move || s.execute(sql).expect("concurrent group-by"))
            })
            .collect();
        join.into_iter().map(|h| h.join().expect("thread")).collect()
    });
    assert_eq!(serial, concurrent);
    assert!(governed.stats().batcher.labeled_records > 0, "group-by must route through admission");
}

/// Bit-identity over the Postgres wire: the same session ids on a plain
/// and a governed server answer byte-identical rows (the server renders
/// floats in shortest-round-trip form, so string equality is bit
/// equality). Clients connect sequentially — accept order is session-id
/// order — then query concurrently.
#[test]
fn wire_results_are_bit_identical_with_the_governor_on() {
    let sql = "SELECT AVG(nb_links) FROM emails WHERE is_spam ORACLE LIMIT 500";
    let rows_by_session = |governor: bool| {
        let server = Server::bind(
            engine(11, governor, if governor { Duration::from_micros(50) } else { Duration::ZERO }),
            "127.0.0.1:0",
        )
        .expect("bind")
        .spawn()
        .expect("spawn server");
        let addr = server.addr();
        let mut clients: Vec<WireClient> = (0..4)
            .map(|_| WireClient::connect(addr).expect("connect"))
            .collect();
        let mut results: Vec<(u32, Vec<Vec<Option<String>>>)> = std::thread::scope(|scope| {
            let join: Vec<_> = clients
                .iter_mut()
                .map(|client| {
                    scope.spawn(move || {
                        let pid = client.backend_pid();
                        let out = client.query(sql).expect("wire query");
                        assert!(out.error.is_none(), "{:?}", out.error);
                        (pid, out.rows)
                    })
                })
                .collect();
            join.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        server.shutdown();
        results.sort_by_key(|&(pid, _)| pid);
        results
    };
    assert_eq!(rows_by_session(false), rows_by_session(true));
}

/// `SHOW STATS` surfaces the batcher counters and the per-session spend
/// ledger over the wire.
#[test]
fn show_stats_reports_the_governor_over_the_wire() {
    let server = Server::bind(engine(13, true, Duration::ZERO), "127.0.0.1:0")
        .expect("bind")
        .spawn()
        .expect("spawn server");
    let mut client = WireClient::connect(server.addr()).expect("connect");
    let out = client
        .query("SELECT AVG(nb_links) FROM emails WHERE is_spam ORACLE LIMIT 300; SHOW STATS")
        .expect("query + stats");
    assert!(out.error.is_none(), "{:?}", out.error);
    let stat = |name: &str| -> u64 {
        out.rows
            .iter()
            .find(|row| row[0].as_deref() == Some(name))
            .and_then(|row| row[1].as_deref())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("SHOW STATS missing `{name}`: {:?}", out.rows))
    };
    assert_eq!(stat("sessions_opened"), 1);
    assert!(stat("batcher.requests") > 0, "labeling must route through admission");
    assert_eq!(stat("batcher.labeled_records"), stat("session.0.oracle_spend"));
    assert!(out.tags.iter().any(|t| t.starts_with("SHOW STATS")), "{:?}", out.tags);
    server.shutdown();
}

/// Starvation regression: a greedy tenant with a double budget, capped by
/// a per-session quota inside bounded shared batches, cannot keep fair
/// tenants from completing — and the batcher's ledger attributes every
/// tenant's spend exactly as the tenant's own `QueryResult`s counted it.
#[test]
fn quotas_prevent_starvation_and_keep_spend_exact() {
    let engine = Engine::builder()
        .table(spam_table(20_000))
        .bootstrap_trials(50)
        .seed(23)
        .exec(ExecOptions::default().with_batch_size(32))
        .batcher(
            BatcherOptions::default()
                .with_coalesce(true)
                .with_invocation_overhead(Duration::from_micros(100))
                .with_max_batch_records(64),
        )
        .build();
    let greedy_id = 99u64;
    engine.set_session_quota(greedy_id, 16);

    let (greedy_spend, fair_spends) = std::thread::scope(|scope| {
        let greedy = {
            let mut s = engine.session_with_id(greedy_id);
            scope.spawn(move || {
                (0..2)
                    .map(|_| {
                        s.execute("SELECT AVG(nb_links) FROM emails WHERE is_spam ORACLE LIMIT 2000")
                            .expect("greedy query")
                            .oracle_calls
                    })
                    .sum::<u64>()
            })
        };
        let fair: Vec<_> = (1..=2u64)
            .map(|id| {
                let mut s = engine.session_with_id(id);
                scope.spawn(move || {
                    (0..4)
                        .map(|_| {
                            s.execute(
                                "SELECT AVG(nb_links) FROM emails WHERE is_spam ORACLE LIMIT 300",
                            )
                            .expect("fair query")
                            .oracle_calls
                        })
                        .sum::<u64>()
                })
            })
            .collect();
        (
            greedy.join().expect("greedy thread"),
            fair.into_iter().map(|h| h.join().expect("fair thread")).collect::<Vec<u64>>(),
        )
    });

    let ledger: std::collections::BTreeMap<u64, u64> =
        engine.stats().per_session_spend.into_iter().collect();
    assert_eq!(ledger.get(&greedy_id), Some(&greedy_spend), "greedy ledger entry");
    for (id, spend) in (1..=2u64).zip(&fair_spends) {
        assert!(*spend > 0, "fair tenant {id} starved");
        assert_eq!(ledger.get(&id), Some(spend), "fair tenant {id} ledger entry");
    }
}

/// Cache-aware scheduling: with the label store warm, a prepared replay
/// draws the identical records, is answered entirely from the store, and
/// admits **nothing** — the hits are reported as `cache_served` instead
/// of consuming batch slots.
#[test]
fn warm_cache_replays_bypass_admission() {
    let engine = Engine::builder()
        .table(spam_table(20_000))
        .bootstrap_trials(50)
        .label_cache(true)
        .seed(31)
        .governor(true)
        .build();
    let stmt = engine
        .session()
        .prepare("SELECT AVG(nb_links) FROM emails WHERE is_spam ORACLE LIMIT 400")
        .expect("statement plans");
    let cold = stmt.run().expect("cold run");
    assert!(cold.cache_misses > 0);
    let after_cold = engine.stats();
    assert_eq!(after_cold.batcher.labeled_records, cold.cache_misses);

    let warm = stmt.run().expect("warm run");
    assert_eq!(warm.rows, cold.rows, "replay is bit-identical");
    assert_eq!(warm.oracle_calls, 0, "warm replay is free");
    let after_warm = engine.stats();
    assert_eq!(
        after_warm.batcher.labeled_records, after_cold.batcher.labeled_records,
        "store hits must not consume batch slots"
    );
    assert_eq!(
        after_warm.batcher.cache_served - after_cold.batcher.cache_served,
        warm.cache_hits,
        "hits are accounted as cache-served"
    );
}

/// `EXPLAIN` prints the governor line for engine sessions — coalescing
/// state and live counters — and stays side-effect-free.
#[test]
fn explain_prints_the_governor_state() {
    let sql = "SELECT AVG(nb_links) FROM emails WHERE is_spam ORACLE LIMIT 400";
    let on = engine(5, true, Duration::ZERO);
    let plan = on.session().explain(sql).expect("explain");
    assert!(plan.contains("coalescing on"), "{plan}");
    let off = engine(5, false, Duration::ZERO);
    let plan = off.session().explain(sql).expect("explain");
    assert!(plan.contains("coalescing off"), "{plan}");
    // Counters show up once traffic exists.
    let mut session = on.session_with_id(1);
    session.execute(sql).expect("query");
    let plan = session.explain(sql).expect("explain after traffic");
    let stats = on.stats();
    assert!(
        plan.contains(&format!("{} invocations for {} requests", stats.batcher.invocations, stats.batcher.requests)),
        "{plan}"
    );
}
