//! Regression tests for structural (not accidental) output ordering.
//!
//! The catalog, group-by executor, and proxy registry used to keep state
//! in `std::collections::HashMap`, whose iteration order is per-process
//! random — deterministic-looking output was an accident of those maps
//! never being iterated on the result path. They are ordered maps now
//! (`abae-lint`'s `hash_iter` rule keeps it that way), and these tests pin
//! the externally visible consequence: registration/insertion order and
//! map capacity cannot perturb result ordering. Two engines whose
//! catalogs were populated in different orders (and different map shapes,
//! via interleaved extra tables) must answer the same seeded GROUP BY
//! with byte-identical rows.

use abae::data::{ProxyRegistry, Table, TrainedProxy};
use abae::ml::ModelSummary;
use abae::query::Engine;

fn grouped_table(n: usize) -> Table {
    let mut key = Vec::with_capacity(n);
    let mut labels: Vec<Vec<bool>> = vec![Vec::new(); 2];
    let mut proxies: Vec<Vec<f64>> = vec![Vec::new(); 2];
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        let g = match i % 10 {
            0 | 3 => Some(0u16),
            1 | 2 => Some(1),
            _ => None,
        };
        key.push(g);
        for (j, (l, p)) in labels.iter_mut().zip(proxies.iter_mut()).enumerate() {
            let member = g == Some(j as u16);
            l.push(member);
            p.push(if member { 0.8 } else { 0.2 });
        }
        values.push(match g {
            Some(0) => 30.0 + (i % 7) as f64,
            Some(1) => 60.0 + (i % 5) as f64,
            _ => 0.0,
        });
    }
    Table::builder("images", values)
        .predicate("is_gray", std::mem::take(&mut labels[0]), std::mem::take(&mut proxies[0]))
        .predicate("is_blond", std::mem::take(&mut labels[1]), std::mem::take(&mut proxies[1]))
        .group_key(vec!["gray".into(), "blond".into()], key)
        .build()
        .unwrap()
}

/// A filler table whose only job is to perturb catalog map shape
/// (capacity, insertion history) around the table under test.
fn filler(name: &str, n: usize) -> Table {
    let labels: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.9 } else { 0.1 }).collect();
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    Table::builder(name, values).predicate("matches", labels, proxy).build().unwrap()
}

const GROUPED_SQL: &str = "SELECT AVG(smile), hair FROM images \
     WHERE hair(img) = 'gray' OR hair(img) = 'blond' \
     GROUP BY hair(img) ORACLE LIMIT 4000 WITH PROBABILITY 0.9";

#[test]
fn group_by_rows_are_byte_identical_across_catalog_insertion_orders() {
    // Engine A: the grouped table first, then fillers; bindings in
    // gray-then-blond order.
    let a = Engine::builder()
        .table(grouped_table(20_000))
        .table(filler("aaa_events", 64))
        .table(filler("zzz_events", 4096))
        .bind_predicate("images", "hair=gray", "is_gray")
        .bind_predicate("images", "hair=blond", "is_blond")
        .bootstrap_trials(200)
        .seed(31)
        .build();
    // Engine B: fillers straddle the grouped table (different map shapes
    // and insertion history), bindings reversed.
    let b = Engine::builder()
        .table(filler("zzz_events", 4096))
        .table(grouped_table(20_000))
        .table(filler("aaa_events", 64))
        .bind_predicate("images", "hair=blond", "is_blond")
        .bind_predicate("images", "hair=gray", "is_gray")
        .bootstrap_trials(200)
        .seed(31)
        .build();

    let ra = a.session_with_id(7).execute(GROUPED_SQL).expect("engine A executes");
    let rb = b.session_with_id(7).execute(GROUPED_SQL).expect("engine B executes");

    let ga = ra.groups.expect("group-by query returns groups");
    let gb = rb.groups.expect("group-by query returns groups");
    assert!(!ga.is_empty());
    // Byte-identical: row order, names, estimates, CIs — the full Debug
    // rendering, not just set equality.
    assert_eq!(format!("{ga:?}"), format!("{gb:?}"), "group rows must not depend on catalog insertion order");
    assert_eq!(format!("{:?}", ra.rows), format!("{:?}", rb.rows));
    assert_eq!(ra.oracle_calls, rb.oracle_calls);
}

#[test]
fn repeated_runs_in_one_process_are_byte_identical() {
    // Same engine construction twice in the same process: with hash maps
    // this held only because RandomState is per-process; it must hold
    // structurally.
    let make = || {
        Engine::builder()
            .table(grouped_table(10_000))
            .bind_predicate("images", "hair=gray", "is_gray")
            .bind_predicate("images", "hair=blond", "is_blond")
            .bootstrap_trials(100)
            .seed(5)
            .build()
    };
    let r1 = make().session_with_id(3).execute(GROUPED_SQL).unwrap();
    let r2 = make().session_with_id(3).execute(GROUPED_SQL).unwrap();
    assert_eq!(format!("{:?}", r1.groups), format!("{:?}", r2.groups));
}

fn proxy(table: &str, name: &str) -> TrainedProxy {
    TrainedProxy {
        name: name.to_string(),
        table: table.to_string(),
        predicate: "matches".to_string(),
        summary: ModelSummary { family: "keyword".to_string(), params: vec![("w".to_string(), 1.0)] },
        calibrated: false,
        scores: vec![0.5; 4],
        train_limit: 4,
        oracle_spend: 4,
        ece: 0.1,
        auto_selected: false,
    }
}

#[test]
fn proxy_registry_listing_is_independent_of_registration_order() {
    let forward = ProxyRegistry::new();
    for (t, p) in [("alpha", "p1"), ("alpha", "p2"), ("mid", "m1"), ("zeta", "z1")] {
        forward.register(proxy(t, p));
    }
    let reverse = ProxyRegistry::new();
    for (t, p) in [("zeta", "z1"), ("mid", "m1"), ("alpha", "p1"), ("alpha", "p2")] {
        reverse.register(proxy(t, p));
    }
    let names = |r: &ProxyRegistry| -> Vec<(String, String)> {
        r.list_all().iter().map(|p| (p.table.clone(), p.name.clone())).collect()
    };
    assert_eq!(names(&forward), names(&reverse), "SHOW PROXIES order is structural: table-sorted, then registration order");
    assert_eq!(
        names(&forward),
        vec![
            ("alpha".to_string(), "p1".to_string()),
            ("alpha".to_string(), "p2".to_string()),
            ("mid".to_string(), "m1".to_string()),
            ("zeta".to_string(), "z1".to_string()),
        ]
    );
}
