//! Property-based integration tests on the algorithm's core invariants,
//! randomizing over configurations rather than just datasets:
//!
//! * the oracle budget is never exceeded, for any (K, C, budget) combo;
//! * estimates are bounded by the population's statistic range;
//! * runs are deterministic in the RNG seed;
//! * COUNT estimates never go negative or exceed the population.

use abae::core::config::{AbaeConfig, Aggregate, Rounding, SampleReuse};
use abae::core::run_abae;
use abae::data::{FnOracle, Labeled};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small synthetic population parameterized by the property inputs.
fn population(n: usize, positive_every: usize) -> (Vec<f64>, Vec<bool>, Vec<f64>) {
    let scores: Vec<f64> = (0..n).map(|i| (i as f64 * 0.618).fract()).collect();
    let labels: Vec<bool> = (0..n).map(|i| i % positive_every == 0).collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
    (scores, labels, values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn budget_is_never_exceeded(
        strata in 1usize..12,
        budget in 50usize..3000,
        c in 0.1f64..0.9,
        reuse in proptest::bool::ANY,
        rounding in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let (scores, labels, values) = population(5000, 4);
        let oracle = FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
        let cfg = AbaeConfig {
            strata,
            budget,
            stage1_fraction: c,
            reuse: if reuse { SampleReuse::Enabled } else { SampleReuse::Disabled },
            rounding: if rounding { Rounding::Floor } else { Rounding::LargestRemainder },
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        match run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng) {
            Ok(result) => prop_assert!(result.oracle_calls <= budget as u64),
            // Small budgets with many strata are legitimately rejected:
            // the stage-1 split leaves a stratum without a pilot draw.
            Err(_) => {
                let pilot_per_stratum = (c * budget as f64) / strata as f64;
                prop_assert!(pilot_per_stratum < 1.0);
            }
        }
    }

    #[test]
    fn avg_estimate_is_bounded_by_statistic_range(
        strata in 1usize..8,
        budget in 100usize..2000,
        seed in 0u64..500,
    ) {
        let (scores, labels, values) = population(4000, 3);
        let oracle = FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
        let cfg = AbaeConfig { strata, budget, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok(result) = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng) {
            // Values live in [0, 16]; any weighted average of them must too.
            prop_assert!((0.0..=16.0).contains(&result.estimate), "estimate {}", result.estimate);
        }
    }

    #[test]
    fn count_estimate_is_bounded_by_population(
        budget in 100usize..2000,
        positive_every in 2usize..10,
        seed in 0u64..500,
    ) {
        let n = 4000;
        let (scores, labels, values) = population(n, positive_every);
        let oracle = FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
        let cfg = AbaeConfig { budget, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok(result) = run_abae(&scores, &oracle, &cfg, Aggregate::Count, &mut rng) {
            prop_assert!(result.estimate >= 0.0);
            prop_assert!(result.estimate <= n as f64 + 1e-9);
        }
    }

    #[test]
    fn runs_are_deterministic_in_seed(
        budget in 100usize..1500,
        seed in 0u64..500,
    ) {
        let (scores, labels, values) = population(3000, 5);
        let cfg = AbaeConfig { budget, ..Default::default() };
        let run_once = || {
            let labels = labels.clone();
            let values = values.clone();
            let oracle =
                FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
            let mut rng = StdRng::seed_from_u64(seed);
            run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng)
                .map(|r| (r.estimate, r.oracle_calls))
        };
        prop_assert_eq!(run_once().ok(), run_once().ok());
    }
}
