//! Cross-query label-cache acceptance tests (the `LabelStore` in
//! `abae-data`, wired through `Catalog::enable_label_cache`):
//!
//! * a repeated identical query spends **0** extra oracle calls against a
//!   warm store, with the hits/misses surfaced in `QueryResult`;
//! * cached results are bit-identical to uncached, for any thread count of
//!   the labeling pipeline;
//! * different queries over the same (table, predicate) share verdicts.

// These tests deliberately pin the deprecated `Executor` shim: it must
// keep its exact pre-engine behavior (including RNG streams) until it is
// removed. New code belongs on `Engine`/`Session` (tests/engine_sessions.rs).
#![allow(deprecated)]

use abae::core::pipeline::ExecOptions;
use abae::query::{Catalog, Executor, QueryResult};
use abae::data::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spam_table(n: usize) -> Table {
    let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
    let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
    Table::builder("emails", values)
        .predicate("is_spam", labels, proxy)
        .build()
        .unwrap()
}

fn run(catalog: &Catalog, sql: &str, seed: u64, exec: ExecOptions) -> QueryResult {
    let mut executor = Executor::new(catalog);
    executor.bootstrap_trials = 100;
    executor.exec = exec;
    let mut rng = StdRng::seed_from_u64(seed);
    executor.execute(sql, &mut rng).expect("query executes")
}

const SQL: &str = "SELECT AVG(nb_links) FROM emails WHERE is_spam \
                   ORACLE LIMIT 2000 WITH PROBABILITY 0.95";

#[test]
fn warm_store_answers_repeat_queries_for_zero_oracle_calls() {
    let mut catalog = Catalog::new();
    catalog.register_table(spam_table(20_000));
    catalog.enable_label_cache();

    let cold = run(&catalog, SQL, 1, ExecOptions::sequential());
    assert!(cold.oracle_calls > 0);
    assert_eq!(cold.cache_hits, 0, "a cold store has nothing to hit");
    assert_eq!(
        cold.cache_misses, cold.oracle_calls,
        "every labeled record was a miss and charged the oracle"
    );

    // Same query, same seed, warm store: the identical records are drawn,
    // every verdict is cached, and the oracle is never invoked.
    let warm = run(&catalog, SQL, 1, ExecOptions::sequential());
    assert_eq!(warm.oracle_calls, 0, "a warm store must answer entirely from cache");
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm.cache_hits, cold.cache_misses);

    // The answers are bit-identical: estimates, CIs, group rows.
    assert_eq!(warm.rows, cold.rows);
    assert_eq!(warm.groups, cold.groups);

    // The store reports the lifetime totals.
    let store = catalog.label_store().expect("cache enabled");
    assert_eq!(store.misses(), cold.cache_misses);
    assert_eq!(store.hits(), warm.cache_hits);
}

#[test]
fn different_aggregates_share_the_same_verdicts() {
    // A Figure-1-style dashboard: three scalar queries over the same table
    // and predicate. With the store on, only the first pays the oracle.
    let mut catalog = Catalog::new();
    catalog.register_table(spam_table(20_000));
    catalog.enable_label_cache();

    let avg = run(&catalog, SQL, 3, ExecOptions::sequential());
    assert!(avg.oracle_calls > 0);
    for sql in [
        "SELECT COUNT(*) FROM emails WHERE is_spam ORACLE LIMIT 2000 WITH PROBABILITY 0.95",
        "SELECT SUM(nb_links) FROM emails WHERE is_spam ORACLE LIMIT 2000 WITH PROBABILITY 0.95",
    ] {
        // Same seed → same proxy stratification → identical draws: every
        // record needed by the later query is already cached.
        let r = run(&catalog, sql, 3, ExecOptions::sequential());
        assert_eq!(r.oracle_calls, 0, "{sql} should be answered from cache");
        assert_eq!(r.cache_misses, 0);
    }
}

#[test]
fn cached_results_are_bit_identical_across_thread_counts() {
    // The uncached reference result.
    let reference = {
        let mut catalog = Catalog::new();
        catalog.register_table(spam_table(20_000));
        run(&catalog, SQL, 5, ExecOptions::sequential())
    };
    for exec in [ExecOptions::new(1, 64), ExecOptions::new(8, 7)] {
        let mut catalog = Catalog::new();
        catalog.register_table(spam_table(20_000));
        catalog.enable_label_cache();
        let cold = run(&catalog, SQL, 5, exec);
        let warm = run(&catalog, SQL, 5, exec);
        // Caching changes spend accounting, never answers — cold, warm,
        // and uncached agree bit-for-bit at every thread/batch setting.
        assert_eq!(cold.rows, reference.rows, "{exec:?} cold");
        assert_eq!(warm.rows, reference.rows, "{exec:?} warm");
        assert_eq!(cold.oracle_calls, reference.oracle_calls, "{exec:?}");
        assert_eq!(warm.oracle_calls, 0, "{exec:?}");
    }
}

#[test]
fn replacing_a_table_invalidates_its_cached_verdicts() {
    // Verdicts bought against v1 of a table must never answer queries
    // over v2: register_table drops the store's entries for that name.
    let mut catalog = Catalog::new();
    catalog.register_table(spam_table(10_000));
    catalog.enable_label_cache();
    let sql = "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 1000";
    let v1 = run(&catalog, sql, 13, ExecOptions::sequential());
    assert!(v1.cache_misses > 0);

    // v2: same shape, inverted labels — different data under the same name.
    let n = 10_000;
    let labels: Vec<bool> = (0..n).map(|i| i % 4 != 0).collect();
    let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64 + 100.0).collect();
    catalog.register_table(
        Table::builder("emails", values).predicate("is_spam", labels, proxy).build().unwrap(),
    );

    let v2 = run(&catalog, sql, 13, ExecOptions::sequential());
    assert_eq!(v2.cache_hits, 0, "stale v1 verdicts must not serve v2 queries");
    assert!(v2.oracle_calls > 0, "v2 must be labeled fresh");
    assert!(
        v2.estimate() > 50.0,
        "estimate {} reflects v1's statistic, not v2's",
        v2.estimate()
    );
}

#[test]
fn disabling_the_cache_restores_fresh_labeling() {
    let mut catalog = Catalog::new();
    catalog.register_table(spam_table(10_000));
    catalog.enable_label_cache();
    let sql = "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 1000";
    let first = run(&catalog, sql, 9, ExecOptions::sequential());
    assert!(first.cache_misses > 0);
    catalog.disable_label_cache();
    let second = run(&catalog, sql, 9, ExecOptions::sequential());
    assert_eq!(second.oracle_calls, first.oracle_calls, "fresh labeling pays full price");
    assert_eq!((second.cache_hits, second.cache_misses), (0, 0));
}
