//! Cross-query label-cache acceptance tests (the `LabelStore` in
//! `abae-data`, wired through `Catalog::enable_label_cache` and served by
//! the `Engine`/`Session` API):
//!
//! * a repeated identical query spends **0** extra oracle calls against a
//!   warm store, with the hits/misses surfaced in `QueryResult`;
//! * cached results are bit-identical to uncached, for any thread count of
//!   the labeling pipeline;
//! * different queries over the same (table, predicate) share verdicts;
//! * replacing a table drops its verdicts so stale labels never answer
//!   queries over new data.

use abae::core::pipeline::ExecOptions;
use abae::data::Table;
use abae::query::{Catalog, Engine, EngineBuilder, QueryResult};

fn spam_table(n: usize) -> Table {
    let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
    let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
    Table::builder("emails", values)
        .predicate("is_spam", labels, proxy)
        .build()
        .unwrap()
}

/// One engine per test: tables frozen, label cache on/off per builder.
fn engine(n: usize, cache: bool, seed: u64, exec: ExecOptions) -> Engine {
    Engine::builder()
        .table(spam_table(n))
        .label_cache(cache)
        .bootstrap_trials(100)
        .seed(seed)
        .exec(exec)
        .build()
}

/// Runs `sql` on a fresh session with a fixed id, so every call replays
/// the same RNG stream (the engine-API analogue of re-seeding an RNG).
fn run(engine: &Engine, sql: &str, session_id: u64) -> QueryResult {
    engine.session_with_id(session_id).execute(sql).expect("query executes")
}

const SQL: &str = "SELECT AVG(nb_links) FROM emails WHERE is_spam \
                   ORACLE LIMIT 2000 WITH PROBABILITY 0.95";

#[test]
fn warm_store_answers_repeat_queries_for_zero_oracle_calls() {
    let engine = engine(20_000, true, 1, ExecOptions::sequential());

    let cold = run(&engine, SQL, 0);
    assert!(cold.oracle_calls > 0);
    assert_eq!(cold.cache_hits, 0, "a cold store has nothing to hit");
    assert_eq!(
        cold.cache_misses, cold.oracle_calls,
        "every labeled record was a miss and charged the oracle"
    );

    // Same query, same session id, warm store: the identical records are
    // drawn, every verdict is cached, and the oracle is never invoked.
    let warm = run(&engine, SQL, 0);
    assert_eq!(warm.oracle_calls, 0, "a warm store must answer entirely from cache");
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm.cache_hits, cold.cache_misses);

    // The answers are bit-identical: estimates, CIs, group rows.
    assert_eq!(warm.rows, cold.rows);
    assert_eq!(warm.groups, cold.groups);

    // The store reports the lifetime totals.
    let store = engine.label_store().expect("cache enabled");
    assert_eq!(store.misses(), cold.cache_misses);
    assert_eq!(store.hits(), warm.cache_hits);
}

#[test]
fn different_aggregates_share_the_same_verdicts() {
    // A Figure-1-style dashboard: three scalar queries over the same table
    // and predicate. With the store on, only the first pays the oracle.
    let engine = engine(20_000, true, 3, ExecOptions::sequential());

    let avg = run(&engine, SQL, 0);
    assert!(avg.oracle_calls > 0);
    for sql in [
        "SELECT COUNT(*) FROM emails WHERE is_spam ORACLE LIMIT 2000 WITH PROBABILITY 0.95",
        "SELECT SUM(nb_links) FROM emails WHERE is_spam ORACLE LIMIT 2000 WITH PROBABILITY 0.95",
    ] {
        // Same session id → same proxy stratification → identical draws:
        // every record needed by the later query is already cached.
        let r = run(&engine, sql, 0);
        assert_eq!(r.oracle_calls, 0, "{sql} should be answered from cache");
        assert_eq!(r.cache_misses, 0);
    }
}

#[test]
fn cached_results_are_bit_identical_across_thread_counts() {
    // The uncached reference result.
    let reference = run(&engine(20_000, false, 5, ExecOptions::sequential()), SQL, 0);
    for exec in [ExecOptions::new(1, 64), ExecOptions::new(8, 7)] {
        let engine = engine(20_000, true, 5, exec);
        let cold = run(&engine, SQL, 0);
        let warm = run(&engine, SQL, 0);
        // Caching changes spend accounting, never answers — cold, warm,
        // and uncached agree bit-for-bit at every thread/batch setting.
        assert_eq!(cold.rows, reference.rows, "{exec:?} cold");
        assert_eq!(warm.rows, reference.rows, "{exec:?} warm");
        assert_eq!(cold.oracle_calls, reference.oracle_calls, "{exec:?}");
        assert_eq!(warm.oracle_calls, 0, "{exec:?}");
    }
}

#[test]
fn replacing_a_table_invalidates_its_cached_verdicts() {
    // Verdicts bought against v1 of a table must never answer queries
    // over v2: `Catalog::register_table` drops *every* store entry for
    // that table name — whatever the predicate key — before the
    // replacement engine is ever built.
    let mut catalog = Catalog::new();
    catalog.register_table(spam_table(10_000));
    catalog.enable_label_cache();
    {
        // Buy v1 verdicts through the store's public adapter under
        // several predicate keys (invalidation is per-table, so the key
        // spelling is irrelevant — the query layer's real key is just
        // another entry of this table).
        use abae::data::{CachedOracle, Oracle as _, PredicateOracle};
        let table = catalog.table("emails").expect("registered");
        let store = catalog.label_store().expect("cache enabled");
        for key in ["k1", "k2"] {
            let oracle = PredicateOracle::new(table, "is_spam").expect("column exists");
            let cached = CachedOracle::new(oracle, store, "emails", key);
            let ids: Vec<usize> = (0..500).collect();
            cached.label_batch(&ids);
            assert_eq!(store.cached_verdicts("emails", key), 500);
        }
    }

    // v2: same shape, inverted labels — different data under the same name.
    let n = 10_000;
    let labels: Vec<bool> = (0..n).map(|i| i % 4 != 0).collect();
    let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64 + 100.0).collect();
    catalog.register_table(
        Table::builder("emails", values).predicate("is_spam", labels, proxy).build().unwrap(),
    );
    let store = catalog.label_store().expect("cache survives");
    for key in ["k1", "k2"] {
        assert_eq!(
            store.cached_verdicts("emails", key),
            0,
            "register_table must drop the replaced table's `{key}` verdicts"
        );
    }

    // A query over v2 through an engine adopting the catalog labels
    // fresh; rerunning it proves the query layer's own key round-trips
    // through the store (warm second run), so the first run's zero hits
    // demonstrates invalidation, not a key mismatch.
    let engine = EngineBuilder::from_catalog(catalog).bootstrap_trials(100).seed(13).build();
    let sql = "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 1000";
    let v2 = run(&engine, sql, 0);
    assert_eq!(v2.cache_hits, 0, "stale v1 verdicts must not serve v2 queries");
    assert!(v2.oracle_calls > 0, "v2 must be labeled fresh");
    assert!(
        v2.estimate() > 50.0,
        "estimate {} reflects v1's statistic, not v2's",
        v2.estimate()
    );
    let warm = run(&engine, sql, 0);
    assert_eq!(warm.oracle_calls, 0, "the v2 verdicts themselves are cached normally");
    assert_eq!(warm.cache_hits, v2.cache_misses);
}

#[test]
fn disabling_the_cache_restores_fresh_labeling() {
    // Two engines over the same data and seed, cache on vs off: the
    // cacheless engine pays full price on every run with zeroed cache
    // accounting, and the answers agree bit for bit.
    let sql = "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 1000";
    let cached = engine(10_000, true, 9, ExecOptions::sequential());
    let first = run(&cached, sql, 0);
    assert!(first.cache_misses > 0);

    let fresh = engine(10_000, false, 9, ExecOptions::sequential());
    for _ in 0..2 {
        let r = run(&fresh, sql, 0);
        assert_eq!(r.oracle_calls, first.oracle_calls, "fresh labeling pays full price");
        assert_eq!((r.cache_hits, r.cache_misses), (0, 0));
        assert_eq!(r.rows, first.rows, "caching never changes answers");
    }
}
