//! Multi-aggregate `SELECT` acceptance tests:
//!
//! * `ci.lo <= estimate <= ci.hi` for **every** `AggFunc`, including
//!   `PERCENTAGE` (whose CI must scale with its estimate);
//! * a 3-aggregate query spends exactly the oracle budget of a
//!   1-aggregate query (one shared labeling pass);
//! * grouped queries carry a per-group CI that brackets each row.

use abae::query::{AggFunc, Engine};
use abae::data::Table;

/// 20k records; the predicate holds for ~30%, the statistic is a 0/1
/// indicator so `PERCENTAGE` is meaningful alongside AVG/SUM/COUNT.
fn indicator_table(n: usize) -> Table {
    let labels: Vec<bool> = (0..n).map(|i| i % 10 < 3).collect();
    let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.85 } else { 0.15 }).collect();
    let values: Vec<f64> = (0..n).map(|i| f64::from(i % 5 == 0)).collect();
    Table::builder("events", values).predicate("matches", labels, proxy).build().unwrap()
}

#[test]
fn every_aggregates_ci_brackets_its_estimate() {
    let engine = Engine::builder()
        .table(indicator_table(20_000))
        .bootstrap_trials(300)
        .build();

    for (func, sql_agg) in [
        (AggFunc::Avg, "AVG(x)"),
        (AggFunc::Sum, "SUM(x)"),
        (AggFunc::Count, "COUNT(*)"),
        (AggFunc::Percentage, "PERCENTAGE(x)"),
    ] {
        // Several session streams per aggregate: bracketing must hold
        // every time, not just on a lucky draw.
        for seed in 0..5u64 {
            let sql = format!(
                "SELECT {sql_agg} FROM events WHERE matches ORACLE LIMIT 2000 \
                 WITH PROBABILITY 0.95"
            );
            let r = engine.session_with_id(seed).execute(&sql).expect("query executes");
            assert_eq!(r.rows.len(), 1);
            assert_eq!(r.rows[0].func, func);
            let ci = r.ci().unwrap_or_else(|| panic!("{func:?} must carry a CI"));
            assert!(
                ci.lo <= r.estimate() && r.estimate() <= ci.hi,
                "{func:?} seed {seed}: CI [{}, {}] does not bracket estimate {}",
                ci.lo,
                ci.hi,
                r.estimate()
            );
        }
    }
}

#[test]
fn percentage_is_avg_times_one_hundred_with_matching_ci() {
    let engine = Engine::builder()
        .table(indicator_table(20_000))
        .bootstrap_trials(200)
        .build();
    // The same session id replays the same RNG stream, so both queries
    // see identical draws.
    let avg = engine
        .session_with_id(11)
        .execute("SELECT AVG(x) FROM events WHERE matches ORACLE LIMIT 2000")
        .unwrap();
    let pct = engine
        .session_with_id(11)
        .execute("SELECT PERCENTAGE(x) FROM events WHERE matches ORACLE LIMIT 2000")
        .unwrap();
    assert!((pct.estimate() - 100.0 * avg.estimate()).abs() < 1e-9);
    let (aci, pci) = (avg.ci().unwrap(), pct.ci().unwrap());
    assert!((pci.lo - 100.0 * aci.lo).abs() < 1e-9, "CI lower bound must scale too");
    assert!((pci.hi - 100.0 * aci.hi).abs() < 1e-9, "CI upper bound must scale too");
}

#[test]
fn three_aggregates_spend_exactly_one_oracle_budget() {
    let engine = Engine::builder()
        .table(indicator_table(20_000))
        .bootstrap_trials(100)
        .build();

    let single = engine
        .session_with_id(21)
        .execute("SELECT AVG(x) FROM events WHERE matches ORACLE LIMIT 3000")
        .unwrap();
    let multi = engine
        .session_with_id(21)
        .execute("SELECT AVG(x), SUM(x), COUNT(*) FROM events WHERE matches ORACLE LIMIT 3000")
        .unwrap();
    assert_eq!(
        multi.oracle_calls, single.oracle_calls,
        "a 3-aggregate query must cost what a 1-aggregate query costs"
    );
    assert_eq!(multi.rows.len(), 3);
    // The shared pass answers the first aggregate identically to the
    // dedicated single-aggregate run (same seed, same RNG stream).
    assert_eq!(multi.rows[0], single.rows[0]);
    // Every row's CI brackets its estimate.
    for row in &multi.rows {
        let ci = row.ci.expect("scalar rows carry CIs");
        assert!(ci.lo <= row.estimate && row.estimate <= ci.hi, "{row:?}");
    }
    // Sanity: COUNT is on the population-count scale, AVG on the unit
    // scale — the rows really are different aggregates of one sample.
    assert!(multi.rows[2].estimate > 100.0 * multi.rows[0].estimate);
}

fn grouped_table(n: usize) -> Table {
    let mut key = Vec::with_capacity(n);
    let mut labels: Vec<Vec<bool>> = vec![Vec::new(); 2];
    let mut proxies: Vec<Vec<f64>> = vec![Vec::new(); 2];
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        let g = match i % 10 {
            0 => Some(0u16),
            1 | 2 => Some(1),
            _ => None,
        };
        key.push(g);
        for (j, (l, p)) in labels.iter_mut().zip(proxies.iter_mut()).enumerate() {
            let member = g == Some(j as u16);
            l.push(member);
            p.push(if member { 0.8 } else { 0.2 });
        }
        values.push(match g {
            Some(0) => 30.0 + (i % 7) as f64,
            Some(1) => 60.0 + (i % 5) as f64,
            _ => 0.0,
        });
    }
    Table::builder("images", values)
        .predicate("is_gray", std::mem::take(&mut labels[0]), std::mem::take(&mut proxies[0]))
        .predicate("is_blond", std::mem::take(&mut labels[1]), std::mem::take(&mut proxies[1]))
        .group_key(vec!["gray".into(), "blond".into()], key)
        .build()
        .unwrap()
}

#[test]
fn grouped_queries_carry_bracketing_per_group_cis() {
    let engine = Engine::builder()
        .table(grouped_table(20_000))
        .bind_predicate("images", "hair=gray", "is_gray")
        .bind_predicate("images", "hair=blond", "is_blond")
        .bootstrap_trials(200)
        .seed(31)
        .build();
    let r = engine
        .session()
        .execute(
            "SELECT AVG(smile), hair FROM images \
             WHERE hair(img) = 'gray' OR hair(img) = 'blond' \
             GROUP BY hair(img) ORACLE LIMIT 4000 WITH PROBABILITY 0.9",
        )
        .unwrap();
    let rows = r.groups.expect("group-by query");
    assert_eq!(rows.len(), 2);
    for row in &rows {
        let ci = row.ci.unwrap_or_else(|| panic!("group {} must carry a CI", row.name));
        assert!((ci.confidence - 0.9).abs() < 1e-9);
        assert!(
            ci.lo <= row.estimate && row.estimate <= ci.hi,
            "group {}: [{}, {}] vs {}",
            row.name,
            ci.lo,
            ci.hi,
            row.estimate
        );
    }
}
