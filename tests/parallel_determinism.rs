//! The parallel pipeline's central contract: for a fixed seed, estimates,
//! confidence intervals, and `oracle_calls` are **bit-identical** whether
//! oracle batches are labeled on 1 thread or 8, and for any batch size.
//!
//! All randomness (which records to draw) stays on the caller's thread;
//! `abae::core::pipeline` only distributes deterministic labeling work and
//! reassembles it in input order — so thread count and batch size must be
//! invisible in every output bit. These tests randomize populations,
//! budgets, and strata counts, and compare every algorithm path against the
//! sequential reference. A final wall-clock test shows the parallelism is
//! real: with a simulated 100µs oracle latency, 8 threads label ≥4× faster
//! than 1 (sleep-bound, so this holds regardless of host core count).

use abae::core::adaptive::{run_adaptive, AdaptiveConfig};
use abae::core::groupby::{groupby_multi_oracle, groupby_single_oracle, GroupByConfig};
use abae::core::multipred::{run_multipred, PredExpr};
use abae::core::pipeline::{label_all, ExecOptions};
use abae::core::{run_abae_with_ci, AbaeConfig, AbaeResult, Aggregate};
use abae::data::{FnOracle, Labeled, Oracle, PredicateOracle, SingleGroupOracle, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// The thread counts every scenario is checked under (1 is the reference).
const THREADS: [usize; 3] = [1, 2, 8];

/// A seeded random population: proxy scores of mixed quality, labels
/// correlated with the proxy, values with per-record structure.
fn population(n: usize, seed: u64) -> (Vec<f64>, Vec<bool>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let s: f64 = rng.gen();
        scores.push(s);
        labels.push(rng.gen::<f64>() < 0.2 + 0.6 * s);
        values.push(rng.gen_range(0.0..50.0));
    }
    (scores, labels, values)
}

fn assert_same_result(reference: &AbaeResult, got: &AbaeResult, what: &str) {
    assert_eq!(
        reference.estimate.to_bits(),
        got.estimate.to_bits(),
        "{what}: estimate differs ({} vs {})",
        reference.estimate,
        got.estimate
    );
    assert_eq!(reference.oracle_calls, got.oracle_calls, "{what}: oracle_calls differ");
    match (&reference.ci, &got.ci) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.lo.to_bits(), b.lo.to_bits(), "{what}: CI lo differs");
            assert_eq!(a.hi.to_bits(), b.hi.to_bits(), "{what}: CI hi differs");
        }
        _ => panic!("{what}: CI presence differs"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two-stage ABae with a bootstrap CI: every (threads, batch) combo
    /// reproduces the sequential run bit for bit.
    #[test]
    fn two_stage_is_scheduling_independent(
        pop_seed in 0u64..1_000_000,
        run_seed in 0u64..1_000_000,
        budget in 300usize..1500,
        strata in 2usize..6,
    ) {
        let (scores, labels, values) = population(4000, pop_seed);
        let run = |threads: usize, batch: usize| {
            let oracle = {
                let labels = labels.clone();
                let values = values.clone();
                FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] })
            };
            let cfg = AbaeConfig {
                strata,
                budget,
                bootstrap: abae::core::BootstrapConfig { trials: 80, alpha: 0.05 },
                exec: ExecOptions::new(threads, batch),
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(run_seed);
            let result = run_abae_with_ci(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng)
                .expect("valid config");
            prop_assert_eq!(oracle.calls(), result.oracle_calls);
            Ok(result)
        };
        let reference = run(1, 64)?;
        for threads in THREADS {
            for batch in [1, 7, 256] {
                assert_same_result(&reference, &run(threads, batch)?, "two-stage");
            }
        }
    }

    /// The sequential (bandit-style) sampler reallocates per round; its
    /// draws depend on earlier estimates, so any scheduling leak would
    /// compound. Still bit-identical.
    #[test]
    fn adaptive_is_scheduling_independent(
        pop_seed in 0u64..1_000_000,
        run_seed in 0u64..1_000_000,
        budget in 400usize..1200,
    ) {
        let (scores, labels, values) = population(3000, pop_seed);
        let run = |threads: usize, batch: usize| {
            let oracle = {
                let labels = labels.clone();
                let values = values.clone();
                FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] })
            };
            let cfg = AdaptiveConfig {
                budget,
                warmup_per_stratum: 10,
                exec: ExecOptions::new(threads, batch),
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(run_seed);
            let result = run_adaptive(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng)
                .expect("valid config");
            prop_assert_eq!(oracle.calls(), result.oracle_calls);
            Ok(result)
        };
        let reference = run(1, 64)?;
        for threads in THREADS {
            let got = run(threads, 33)?;
            prop_assert_eq!(reference.estimate.to_bits(), got.estimate.to_bits());
            prop_assert_eq!(reference.oracle_calls, got.oracle_calls);
            // The full per-stratum sample lists must agree, not just the
            // headline estimate.
            prop_assert_eq!(&reference.samples, &got.samples);
        }
    }
}

/// A three-group table for the group-by scenarios.
fn group_table(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut key = Vec::with_capacity(n);
    let mut labels: Vec<Vec<bool>> = (0..3).map(|_| Vec::with_capacity(n)).collect();
    let mut proxies: Vec<Vec<f64>> = (0..3).map(|_| Vec::with_capacity(n)).collect();
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen();
        let group = if u < 0.15 {
            Some(0u16)
        } else if u < 0.28 {
            Some(1)
        } else if u < 0.36 {
            Some(2)
        } else {
            None
        };
        key.push(group);
        for g in 0..3u16 {
            let member = group == Some(g);
            labels[g as usize].push(member);
            let base: f64 = if member { 0.7 } else { 0.3 };
            proxies[g as usize].push((base + rng.gen_range(-0.25..0.25)).clamp(0.0, 1.0));
        }
        values.push(group.map(|g| 10.0 * (g + 1) as f64).unwrap_or(0.0) + rng.gen_range(0.0..2.0));
    }
    let mut builder = Table::builder("grp", values);
    for (g, name) in ["g0", "g1", "g2"].iter().enumerate() {
        builder = builder.predicate(
            *name,
            std::mem::take(&mut labels[g]),
            std::mem::take(&mut proxies[g]),
        );
    }
    builder
        .group_key(vec!["g0".into(), "g1".into(), "g2".into()], key)
        .build()
        .unwrap()
}

#[test]
fn multipred_is_scheduling_independent() {
    for seed in [3u64, 17, 99] {
        let t = group_table(8000, seed);
        let expr = PredExpr::or(
            PredExpr::and(PredExpr::pred(0), PredExpr::not(PredExpr::pred(1))),
            PredExpr::pred(2),
        );
        let run = |threads: usize, batch: usize| {
            let cfg = AbaeConfig {
                budget: 1200,
                bootstrap: abae::core::BootstrapConfig { trials: 60, alpha: 0.05 },
                exec: ExecOptions::new(threads, batch),
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
            run_multipred(&t, &expr, &cfg, Aggregate::Avg, &mut rng).expect("valid query")
        };
        let reference = run(1, 64);
        for threads in THREADS {
            for batch in [5, 128] {
                assert_same_result(&reference, &run(threads, batch), "multipred");
            }
        }
    }
}

#[test]
fn groupby_single_oracle_is_scheduling_independent() {
    for seed in [1u64, 42] {
        let t = group_table(10_000, seed);
        let proxies: Vec<&[f64]> = t.predicates().iter().map(|p| p.proxy()).collect();
        let run = |threads: usize, batch: usize| {
            let oracle = SingleGroupOracle::new(&t).expect("grouped table");
            let cfg = GroupByConfig {
                budget: 2500,
                exec: ExecOptions::new(threads, batch),
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31) + 7);
            let ests = groupby_single_oracle(&proxies, &oracle, &cfg, &mut rng).expect("valid");
            (ests, oracle.calls())
        };
        let (ref_ests, ref_calls) = run(1, 64);
        for threads in THREADS {
            let (ests, calls) = run(threads, 19);
            assert_eq!(calls, ref_calls, "single-oracle group-by calls differ");
            for (a, b) in ref_ests.iter().zip(&ests) {
                assert_eq!(a.group, b.group);
                assert_eq!(
                    a.estimate.to_bits(),
                    b.estimate.to_bits(),
                    "group {} estimate differs",
                    a.group
                );
            }
        }
    }
}

#[test]
fn groupby_multi_oracle_is_scheduling_independent() {
    for seed in [5u64, 23] {
        let t = group_table(10_000, seed);
        let proxies: Vec<&[f64]> = t.predicates().iter().map(|p| p.proxy()).collect();
        let run = |threads: usize, batch: usize| {
            let o0 = PredicateOracle::new(&t, "g0").unwrap();
            let o1 = PredicateOracle::new(&t, "g1").unwrap();
            let o2 = PredicateOracle::new(&t, "g2").unwrap();
            let cfg = GroupByConfig {
                budget: 3000,
                exec: ExecOptions::new(threads, batch),
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
            let ests =
                groupby_multi_oracle(&proxies, &[&o0, &o1, &o2], &cfg, &mut rng).expect("valid");
            let calls = o0.calls() + o1.calls() + o2.calls();
            (ests, calls)
        };
        let (ref_ests, ref_calls) = run(1, 64);
        for threads in THREADS {
            let (ests, calls) = run(threads, 41);
            assert_eq!(calls, ref_calls, "multi-oracle group-by calls differ");
            for (a, b) in ref_ests.iter().zip(&ests) {
                assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            }
        }
    }
}

/// The acceptance benchmark in miniature: with a simulated 100µs
/// per-invocation latency, 8 labeling threads are ≥4× faster than 1.
/// Sleep-bound work parallelizes regardless of host core count, and the
/// workload is sized so the serial leg takes ~600ms — scheduling jitter on
/// a loaded CI runner is small against the 2× headroom over the 4×
/// threshold (expected speedup ≈ 8×).
#[test]
fn eight_threads_label_at_least_4x_faster_under_latency() {
    let ids: Vec<usize> = (0..6000).collect();
    let timed = |threads: usize| {
        let oracle = FnOracle::new(|i: usize| Labeled { matches: true, value: i as f64 })
            .with_latency(Duration::from_micros(100));
        // abae-lint: allow(wall_clock) -- speedup test: wall time is the quantity under test, and labels are asserted thread-invariant separately
        let start = std::time::Instant::now();
        let labels = label_all(&oracle, &ids, &ExecOptions::new(threads, 32));
        let elapsed = start.elapsed();
        assert_eq!(labels.len(), ids.len());
        assert_eq!(oracle.calls(), ids.len() as u64);
        (labels, elapsed)
    };
    let (serial_labels, serial) = timed(1);
    let (parallel_labels, parallel) = timed(8);
    assert_eq!(serial_labels, parallel_labels, "labels must not depend on threading");
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64();
    assert!(
        speedup >= 4.0,
        "8-thread labeling speedup {speedup:.2}x below 4x ({serial:?} vs {parallel:?})"
    );
}
