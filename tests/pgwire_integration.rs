//! Postgres-wire serving acceptance tests: a real TCP round-trip through
//! `abae-server` with the in-repo wire client.
//!
//! The contracts pinned here:
//!
//! * **Framing**: startup → `AuthenticationOk`/`ParameterStatus`/
//!   `BackendKeyData`/`ReadyForQuery`, then correctly framed
//!   `RowDescription`/`DataRow`/`CommandComplete` per query.
//! * **Determinism over the wire**: connection *N* (accept order) serves
//!   session id *N*, and every float crosses the wire in shortest
//!   round-trip text — so results parse back **bit-identical** to an
//!   in-process [`Session`] run with the same id.
//! * **Error recovery**: a malformed or failing statement answers
//!   `ErrorResponse` with the mapped SQLSTATE and the connection stays
//!   usable; hostile bytes at the framing layer answer a protocol error
//!   and close without killing the server.
//! * **Statement surface**: multi-aggregate + GROUP BY SELECTs, EXPLAIN,
//!   CREATE PROXY / SHOW PROXIES, anytime `UNTIL CI WIDTH` with
//!   per-snapshot `NoticeResponse` progress.

use abae::data::Table;
use abae::query::{Engine, QueryResult};
use abae::server::{Server, ServerHandle, WireClient};
use std::io::{Read, Write};
use std::net::TcpStream;

/// 20k records, ~25% positive, deterministic layout (the engine_sessions
/// fixture).
fn spam_table(n: usize) -> Table {
    let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
    let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
    Table::builder("emails", values)
        .predicate("is_spam", labels, proxy)
        .build()
        .unwrap()
}

fn spam_engine(seed: u64) -> Engine {
    Engine::builder()
        .table(spam_table(20_000))
        .bootstrap_trials(100)
        .seed(seed)
        .build()
}

/// Serves a clone of `engine`; the caller's handle stays usable for
/// in-process replays against the very same catalog.
fn serve(engine: &Engine) -> ServerHandle {
    Server::bind(engine.clone(), "127.0.0.1:0")
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept thread")
}

const SQL: &str = "SELECT AVG(nb_links) FROM emails WHERE is_spam ORACLE LIMIT 600 \
                   WITH PROBABILITY 0.95";

/// Asserts a wire result set equals an in-process [`QueryResult`] bit for
/// bit: labels, estimates, CI bounds, and accounting, row by row.
fn assert_scalar_rows_match(outcome: &abae::server::QueryOutcome, result: &QueryResult) {
    assert_eq!(outcome.rows.len(), result.rows.len(), "row count");
    assert_eq!(outcome.columns[0].name, "aggregate");
    for (i, row) in result.rows.iter().enumerate() {
        assert_eq!(outcome.text(i, 0), Some(format!("{}({})", row.func, row.expr).as_str()));
        assert_bits(outcome.f64(i, 1), Some(row.estimate), "estimate");
        match row.ci {
            Some(ci) => {
                assert_bits(outcome.f64(i, 2), Some(ci.lo), "ci_lo");
                assert_bits(outcome.f64(i, 3), Some(ci.hi), "ci_hi");
                assert_bits(outcome.f64(i, 4), Some(ci.confidence), "ci_confidence");
            }
            None => {
                assert_eq!(outcome.text(i, 2), None, "ci_lo NULL");
                assert_eq!(outcome.text(i, 3), None, "ci_hi NULL");
                assert_eq!(outcome.text(i, 4), None, "ci_confidence NULL");
            }
        }
        assert_eq!(outcome.text(i, 5), Some(result.oracle_calls.to_string().as_str()));
        assert_eq!(outcome.text(i, 6), Some(result.cache_hits.to_string().as_str()));
        assert_eq!(outcome.text(i, 7), Some(result.cache_misses.to_string().as_str()));
    }
}

fn assert_bits(wire: Option<f64>, local: Option<f64>, what: &str) {
    match (wire, local) {
        (Some(w), Some(l)) => {
            assert_eq!(w.to_bits(), l.to_bits(), "{what}: wire {w} != in-process {l}")
        }
        (w, l) => assert_eq!(w.is_some(), l.is_some(), "{what}: {w:?} vs {l:?}"),
    }
}

#[test]
fn wire_results_are_bit_identical_to_in_process_sessions() {
    let engine = spam_engine(0xFEED);
    let server = serve(&engine);

    // First connection = session 0, and the server says so in the
    // BackendKeyData pid slot.
    let mut client = WireClient::connect(server.addr()).expect("connect");
    assert_eq!(client.backend_pid(), 0, "first connection serves session 0");
    assert!(
        client.parameters().iter().any(|(k, v)| k == "client_encoding" && v == "UTF8"),
        "startup negotiates parameters: {:?}",
        client.parameters()
    );

    // Two statements over the wire; the same two statements replayed
    // in-process on session id 0 must match bit for bit — including the
    // second one, which only matches if the wire session's RNG stream
    // advanced exactly like a local session's.
    let multi = "SELECT COUNT(*), SUM(nb_links), AVG(nb_links) FROM emails \
                 WHERE is_spam ORACLE LIMIT 500";
    let wire_a = client.query(SQL).expect("round 1");
    let wire_b = client.query(multi).expect("round 2");
    assert!(wire_a.error.is_none() && wire_b.error.is_none());
    assert_eq!(wire_a.tags, vec!["SELECT 1"]);
    assert_eq!(wire_b.tags, vec!["SELECT 3"]);

    let mut replay = engine.session_with_id(0);
    let local_a = replay.execute(SQL).unwrap();
    let local_b = replay.execute(multi).unwrap();
    assert_scalar_rows_match(&wire_a, &local_a);
    assert_scalar_rows_match(&wire_b, &local_b);

    client.terminate().expect("terminate");
    server.shutdown();
}

#[test]
fn error_responses_leave_the_connection_usable() {
    let engine = spam_engine(0xE11);
    let server = serve(&engine);
    let mut client = WireClient::connect(server.addr()).expect("connect");

    // Syntax error → 42601.
    let bad = client.query("SELECT oops").expect("round survives");
    let err = bad.error.as_ref().expect("ErrorResponse");
    assert_eq!(err.sqlstate, "42601", "{err:?}");
    assert!(bad.rows.is_empty() && bad.tags.is_empty());

    // Unknown table → 42P01; unresolved predicate → 42703.
    let err = client.query("SELECT AVG(x) FROM nowhere WHERE p ORACLE LIMIT 10").unwrap();
    assert_eq!(err.error.as_ref().unwrap().sqlstate, "42P01");
    let err = client.query("SELECT AVG(x) FROM emails WHERE mystery ORACLE LIMIT 10").unwrap();
    assert_eq!(err.error.as_ref().unwrap().sqlstate, "42703");

    // The connection is still this same session: a good query now matches
    // the in-process replay (failed statements never touch the RNG
    // stream, in either world).
    let wire = client.query(SQL).expect("query after errors");
    assert!(wire.error.is_none(), "{:?}", wire.error);
    let mut replay = engine.session_with_id(0);
    for failing in ["SELECT oops", "SELECT AVG(x) FROM nowhere WHERE p ORACLE LIMIT 10"] {
        assert!(replay.run(failing).is_err());
    }
    let local = replay.execute(SQL).unwrap();
    assert_scalar_rows_match(&wire, &local);

    client.terminate().unwrap();
    server.shutdown();
}

/// Deterministic grouped fixture: 10% of records in group `gray` (value
/// 30), 20% in `blond` (value 60), the rest unmatched.
fn grouped_engine(seed: u64) -> Engine {
    let n = 20_000;
    let key: Vec<Option<u16>> = (0..n)
        .map(|i| match i % 10 {
            0 => Some(0u16),
            1 | 2 => Some(1),
            _ => None,
        })
        .collect();
    let gray: Vec<bool> = key.iter().map(|g| *g == Some(0)).collect();
    let blond: Vec<bool> = key.iter().map(|g| *g == Some(1)).collect();
    let proxy = |labels: &[bool]| -> Vec<f64> {
        labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect()
    };
    let values: Vec<f64> = key
        .iter()
        .map(|g| match g {
            Some(0) => 30.0,
            Some(1) => 60.0,
            _ => 0.0,
        })
        .collect();
    let table = Table::builder("images", values)
        .predicate("is_gray", gray.clone(), proxy(&gray))
        .predicate("is_blond", blond.clone(), proxy(&blond))
        .group_key(vec!["gray".into(), "blond".into()], key)
        .build()
        .unwrap();
    Engine::builder()
        .table(table)
        .bind_predicate("images", "hair=gray", "is_gray")
        .bind_predicate("images", "hair=blond", "is_blond")
        .bootstrap_trials(100)
        .seed(seed)
        .build()
}

#[test]
fn group_by_rows_cross_the_wire_bit_identically() {
    let engine = grouped_engine(0x6B);
    let server = serve(&engine);
    let mut client = WireClient::connect(server.addr()).expect("connect");

    let sql = "SELECT AVG(smile), hair FROM images \
               WHERE hair(img) = 'gray' OR hair(img) = 'blond' \
               GROUP BY hair(img) ORACLE LIMIT 2000";
    let wire = client.query(sql).expect("group-by round");
    assert!(wire.error.is_none(), "{:?}", wire.error);
    assert_eq!(wire.columns[0].name, "group_name");
    assert_eq!(wire.tags, vec!["SELECT 2"]);

    let local = engine.session_with_id(0).execute(sql).unwrap();
    let groups = local.groups.as_ref().expect("grouped result");
    assert_eq!(wire.rows.len(), groups.len());
    for (i, g) in groups.iter().enumerate() {
        assert_eq!(wire.text(i, 0), Some(g.name.as_str()));
        assert_bits(wire.f64(i, 1), Some(g.estimate), "group estimate");
        if let Some(ci) = g.ci {
            assert_bits(wire.f64(i, 2), Some(ci.lo), "group ci_lo");
            assert_bits(wire.f64(i, 3), Some(ci.hi), "group ci_hi");
        }
    }

    client.terminate().unwrap();
    server.shutdown();
}

#[test]
fn until_ci_width_streams_notice_progress_before_final_rows() {
    let engine = spam_engine(23);
    let server = serve(&engine);
    let mut client = WireClient::connect(server.addr()).expect("connect");

    let sql = "SELECT AVG(nb_links) FROM emails WHERE is_spam \
               UNTIL CI WIDTH < 5 MAX ORACLE LIMIT 3000";
    let wire = client.query(sql).expect("anytime round");
    assert!(wire.error.is_none(), "{:?}", wire.error);

    // Progress notices arrived, the last one marked final, and the spend
    // they report stops short of the cap (the CI target fired early).
    assert!(!wire.notices.is_empty(), "anytime queries stream NoticeResponse progress");
    let last = wire.notices.last().unwrap();
    assert!(last.contains("(final)"), "last notice flags completion: {last}");
    assert!(last.starts_with("progress: "), "{last}");

    let local = engine.session_with_id(0).execute(sql).unwrap();
    assert!(local.oracle_calls < 3000, "early stop spent {}", local.oracle_calls);
    assert_scalar_rows_match(&wire, &local);
    assert!(
        last.contains(&format!("progress: {} labels", local.oracle_calls)),
        "final notice reports the true spend: {last} vs {}",
        local.oracle_calls
    );

    client.terminate().unwrap();
    server.shutdown();
}

/// Like [`spam_engine`], but the table carries text payloads so
/// `CREATE PROXY ... USING logistic` has features to train on.
fn textual_spam_engine(seed: u64) -> Engine {
    let n = 20_000;
    let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
    let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
    let texts: Vec<String> = labels
        .iter()
        .enumerate()
        .map(|(i, &spam)| {
            if spam {
                format!("buy cheap pills now offer {i}")
            } else {
                format!("meeting agenda notes thursday {i}")
            }
        })
        .collect();
    let table = Table::builder("emails", values)
        .predicate("is_spam", labels, proxy)
        .texts(texts)
        .build()
        .unwrap();
    Engine::builder().table(table).bootstrap_trials(100).seed(seed).build()
}

#[test]
fn proxy_statements_and_explain_work_over_the_wire() {
    let engine = textual_spam_engine(0xF0);
    let server = serve(&engine);
    let mut client = WireClient::connect(server.addr()).expect("connect");

    // EXPLAIN: one QUERY PLAN text column, no oracle spend, and the plan
    // text matches the in-process render exactly.
    let explain = client.query(&format!("EXPLAIN {SQL}")).expect("explain round");
    assert!(explain.error.is_none(), "{:?}", explain.error);
    assert_eq!(explain.columns.len(), 1);
    assert_eq!(explain.columns[0].name, "QUERY PLAN");
    assert_eq!(explain.tags, vec!["EXPLAIN"]);
    let local_plan = engine.session_with_id(0).explain(SQL).unwrap();
    let wire_plan: Vec<&str> =
        explain.rows.iter().map(|r| r[0].as_deref().unwrap_or("")).collect();
    assert_eq!(wire_plan, local_plan.lines().collect::<Vec<_>>());

    // CREATE PROXY: trains in-engine, reports via notice, tags the round.
    let create = client
        .query("CREATE PROXY spamnet ON emails(is_spam) USING logistic TRAIN LIMIT 300")
        .expect("create proxy round");
    assert!(create.error.is_none(), "{:?}", create.error);
    assert_eq!(create.tags, vec!["CREATE PROXY"]);
    assert!(
        create.notices.iter().any(|n| n.contains("spamnet")),
        "training report notice: {:?}",
        create.notices
    );

    // SHOW PROXIES: the artifact comes back as a text row.
    let show = client.query("SHOW PROXIES").expect("show proxies round");
    assert!(show.error.is_none());
    assert_eq!(show.columns[0].name, "proxy");
    assert_eq!(show.rows.len(), 1);
    assert!(show.text(0, 0).unwrap().contains("spamnet"));
    assert_eq!(show.tags, vec!["SHOW PROXIES 1"]);

    client.terminate().unwrap();
    server.shutdown();
}

#[test]
fn multi_statement_query_strings_answer_per_statement() {
    let engine = spam_engine(0x5E);
    let server = serve(&engine);
    let mut client = WireClient::connect(server.addr()).expect("connect");

    let wire = client
        .query(&format!("{SQL}; SHOW PROXIES;"))
        .expect("multi-statement round");
    assert!(wire.error.is_none(), "{:?}", wire.error);
    assert_eq!(wire.tags, vec!["SELECT 1", "SHOW PROXIES 0"]);
    // Rows from both statements accumulate (1 aggregate row + 0 proxies).
    assert_eq!(wire.rows.len(), 1);

    // An empty query string answers EmptyQueryResponse, not an error.
    let empty = client.query("   ;  ; ").expect("empty round");
    assert!(empty.empty, "EmptyQueryResponse for blank statements");
    assert!(empty.error.is_none());

    // An error mid-string aborts the rest, Postgres-style: the trailing
    // SHOW PROXIES never runs.
    let aborted = client.query("SELECT oops; SHOW PROXIES").expect("aborted round");
    assert_eq!(aborted.error.as_ref().unwrap().sqlstate, "42601");
    assert!(aborted.tags.is_empty(), "statements after the error are skipped");

    client.terminate().unwrap();
    server.shutdown();
}

#[test]
fn concurrent_connections_replay_their_session_ids() {
    let engine = spam_engine(0xC0);
    let server = serve(&engine);
    let addr = server.addr();

    // 4 concurrent connections, each running the same statement. Accept
    // order (= session id) is racy, so each connection reports the id the
    // server assigned it via backend_pid; the result must match an
    // in-process run of exactly that session id.
    let workers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).expect("connect");
                let outcome = client.query(SQL).expect("query");
                assert!(outcome.error.is_none(), "{:?}", outcome.error);
                let id = client.backend_pid();
                client.terminate().expect("terminate");
                (id, outcome)
            })
        })
        .collect();
    let mut seen = Vec::new();
    for worker in workers {
        let (id, outcome) = worker.join().expect("worker");
        let local = engine.session_with_id(u64::from(id)).execute(SQL).unwrap();
        assert_scalar_rows_match(&outcome, &local);
        seen.push(id);
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![0, 1, 2, 3], "accept order assigns session ids 0..N");

    server.shutdown();
}

/// Reads one backend frame from a raw socket: (kind, payload).
fn read_frame(stream: &mut TcpStream) -> std::io::Result<(u8, Vec<u8>)> {
    let mut head = [0u8; 5];
    stream.read_exact(&mut head)?;
    let len = u32::from_be_bytes([head[1], head[2], head[3], head[4]]) as usize;
    let mut payload = vec![0u8; len - 4];
    stream.read_exact(&mut payload)?;
    Ok((head[0], payload))
}

/// Drains frames until ReadyForQuery.
fn read_to_ready(stream: &mut TcpStream) {
    loop {
        let (kind, _) = read_frame(stream).expect("greeting frame");
        if kind == b'Z' {
            return;
        }
    }
}

fn raw_startup(stream: &mut TcpStream) {
    let mut body = 196_608u32.to_be_bytes().to_vec();
    body.extend_from_slice(b"user\0abae\0\0");
    let mut msg = ((body.len() + 4) as u32).to_be_bytes().to_vec();
    msg.extend_from_slice(&body);
    stream.write_all(&msg).expect("startup");
    read_to_ready(stream);
}

#[test]
fn hostile_bytes_get_a_protocol_error_and_the_server_survives() {
    let engine = spam_engine(0xBAD);
    let server = serve(&engine);
    let addr = server.addr();

    // Hostile length prefix after a valid startup: a Query frame claiming
    // 16 MiB. The server must answer ErrorResponse 08P01 and close — not
    // allocate, not panic.
    let mut stream = TcpStream::connect(addr).expect("connect");
    raw_startup(&mut stream);
    let mut msg = vec![b'Q'];
    msg.extend_from_slice(&(16_u32 << 20).to_be_bytes());
    stream.write_all(&msg).expect("hostile frame");
    let (kind, payload) = read_frame(&mut stream).expect("error frame");
    assert_eq!(kind, b'E');
    let text = String::from_utf8_lossy(&payload);
    assert!(text.contains("08P01"), "protocol violation SQLSTATE: {text}");
    // ... and the connection is closed (EOF, not a hang).
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    assert!(rest.is_empty(), "no frames after a framing error");

    // Hostile startup length prefix: rejected before any allocation.
    let mut stream = TcpStream::connect(addr).expect("connect 2");
    stream.write_all(&u32::MAX.to_be_bytes()).expect("hostile startup");
    let (kind, _) = read_frame(&mut stream).expect("startup error frame");
    assert_eq!(kind, b'E');

    // Unknown protocol version: typed rejection.
    let mut stream = TcpStream::connect(addr).expect("connect 3");
    let mut msg = 8u32.to_be_bytes().to_vec();
    msg.extend_from_slice(&12345u32.to_be_bytes());
    stream.write_all(&msg).expect("bad version");
    let (kind, _) = read_frame(&mut stream).expect("version error frame");
    assert_eq!(kind, b'E');

    // The server shrugged all of that off: a well-behaved client still
    // gets answers.
    let mut client = WireClient::connect_opts(addr, true).expect("connect after hostility");
    let outcome = client.query(SQL).expect("query after hostility");
    assert!(outcome.error.is_none());
    assert_eq!(outcome.rows.len(), 1);
    client.terminate().unwrap();
    server.shutdown();
}

#[test]
fn ssl_probe_unknown_messages_and_abrupt_eof_are_tolerated() {
    let engine = spam_engine(0xD0);
    let server = serve(&engine);
    let addr = server.addr();

    // psql-style SSL probe: 'N', then a clear-text handshake.
    let mut client = WireClient::connect_opts(addr, true).expect("connect with probe");

    // An extended-protocol message ('P' Parse) is answered with an error
    // — the connection survives because framing stayed intact.
    // (Driven through a raw socket on a second connection so the client
    // abstraction stays simple.)
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    raw_startup(&mut raw);
    raw.write_all(&[b'P', 0, 0, 0, 5, 0]).expect("extended-protocol frame");
    let (kind, payload) = read_frame(&mut raw).expect("error frame");
    assert_eq!(kind, b'E');
    assert!(String::from_utf8_lossy(&payload).contains("simple query protocol"));
    let (kind, _) = read_frame(&mut raw).expect("ready frame");
    assert_eq!(kind, b'Z', "connection stays ready after an unknown message");
    // Abrupt EOF (no Terminate): the server must shrug this off too.
    drop(raw);

    let outcome = client.query(SQL).expect("query on probed connection");
    assert!(outcome.error.is_none());
    client.terminate().unwrap();
    server.shutdown();
}
