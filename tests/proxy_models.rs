//! Acceptance tests for the in-engine proxy subsystem (`CREATE PROXY` →
//! `USING` → `EXPLAIN`/`SHOW PROXIES`):
//!
//! * train-then-query runs end-to-end on the emulated trec05p corpus and
//!   is **bit-identical** across labeling-pipeline thread counts;
//! * `EXPLAIN` reports model provenance, training oracle spend, and ECE;
//! * a query `USING` the trained proxy beats uniform sampling's CI width
//!   on the same oracle budget;
//! * `USING` an unknown name fails listing every proxy the table has —
//!   columns and trained artifacts;
//! * Platt calibration preserves the stratification, so calibrated and
//!   raw scores induce identical ABae runs.

use abae::core::config::{AbaeConfig, Aggregate, BootstrapConfig};
use abae::core::pipeline::ExecOptions;
use abae::core::uniform::run_uniform_with_ci;
use abae::data::emulators::{trec05p, EmulatorOptions};
use abae::data::PredicateOracle;
use abae::query::{Engine, QueryError, StatementOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CREATE: &str = "CREATE PROXY spamnet ON trec05p(is_spam) \
                      USING logistic CALIBRATED TRAIN LIMIT 1000";
const SELECT: &str = "SELECT AVG(links) FROM trec05p WHERE is_spam \
                      ORACLE LIMIT 2000 USING spamnet WITH PROBABILITY 0.95";

fn engine(exec: ExecOptions) -> Engine {
    let table = trec05p(&EmulatorOptions { scale: 0.1, seed: 42 });
    Engine::builder()
        .table(table)
        .label_cache(true)
        .bootstrap_trials(200)
        .seed(0xF00D)
        .exec(exec)
        .build()
}

/// Runs the train-then-query sequence on one session and returns both
/// outcomes.
fn train_then_query(engine: &Engine) -> (StatementOutcome, abae::query::QueryResult) {
    let mut session = engine.session_with_id(0);
    let created = session.run(CREATE).expect("training succeeds");
    let result = session.execute(SELECT).expect("query executes");
    (created, result)
}

#[test]
fn create_proxy_then_select_is_bit_identical_across_thread_counts() {
    let (created_ref, result_ref) = train_then_query(&engine(ExecOptions::new(1, 64)));
    let proxy_ref = match &created_ref {
        StatementOutcome::ProxyCreated(p) => p.clone(),
        other => panic!("unexpected outcome {other:?}"),
    };
    assert_eq!(proxy_ref.train_limit, 1000);
    assert_eq!(proxy_ref.oracle_spend, 1000);
    assert!(proxy_ref.ece >= 0.0 && proxy_ref.ece < 0.5, "ECE {}", proxy_ref.ece);
    assert!(result_ref.oracle_calls <= 2000);
    let ci = result_ref.ci().expect("scalar CI");
    assert!((ci.confidence - 0.95).abs() < 1e-9);
    assert!(ci.lo <= result_ref.estimate() && result_ref.estimate() <= ci.hi);
    assert!(
        result_ref.cache_hits > 0,
        "the query should reuse some training verdicts from the label store"
    );

    // The acceptance bar: ABAE_THREADS=1 vs 8 — training (scoring fans
    // across workers), the registered artifact, and the query answer are
    // all bit-identical.
    for exec in [ExecOptions::new(8, 7), ExecOptions::new(8, 256)] {
        let (created, result) = train_then_query(&engine(exec));
        let proxy = match &created {
            StatementOutcome::ProxyCreated(p) => p.clone(),
            other => panic!("unexpected outcome {other:?}"),
        };
        assert_eq!(proxy.scores, proxy_ref.scores, "{exec:?} scores");
        assert_eq!(proxy.ece, proxy_ref.ece, "{exec:?} ece");
        assert_eq!(result, result_ref, "{exec:?} query result");
    }

    // And the whole sequence replays on a fresh session with the same id.
    let (created, result) = train_then_query(&engine(ExecOptions::new(1, 64)));
    assert_eq!(created, created_ref);
    assert_eq!(result, result_ref);
}

#[test]
fn explain_reports_model_provenance_spend_and_ece() {
    let engine = engine(ExecOptions::sequential());
    let mut session = engine.session_with_id(0);
    let created = session.run(CREATE).expect("training succeeds");
    let proxy = match created {
        StatementOutcome::ProxyCreated(p) => p,
        other => panic!("unexpected outcome {other:?}"),
    };
    let plan = session.explain(SELECT).expect("plan renders");
    assert!(plan.contains("trained model `spamnet`"), "{plan}");
    assert!(plan.contains("platt(logistic)"), "{plan}");
    assert!(plan.contains("calibrated"), "{plan}");
    assert!(plan.contains("1000 training labels"), "{plan}");
    assert!(plan.contains("1000 oracle calls spent"), "{plan}");
    assert!(plan.contains(&format!("ECE {:.4}", proxy.ece)), "{plan}");

    // A column-backed query names the column instead.
    let plan = session
        .explain("SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 500 USING is_spam")
        .expect("plan renders");
    assert!(plan.contains("proxy  : column `is_spam` (precomputed scores)"), "{plan}");
    // The default (no USING) reports the §3.3 combination of columns.
    let plan = session
        .explain("SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 500")
        .expect("plan renders");
    assert!(plan.contains("combined by the §3.3 rules"), "{plan}");
}

#[test]
fn trained_proxy_beats_uniform_sampling_ci_width_on_the_same_budget() {
    let engine = engine(ExecOptions::sequential());
    let n = engine.catalog().table("trec05p").unwrap().len();
    let mut session = engine.session_with_id(0);
    session.run(CREATE).expect("training succeeds");

    // Mean CI width over a few repeats, so the pin is about the sampling
    // design rather than one lucky draw.
    let trials = 5;
    let mut abae_width = 0.0;
    for _ in 0..trials {
        let r = session.execute(SELECT).expect("query executes");
        let ci = r.ci().expect("scalar CI");
        abae_width += (ci.hi - ci.lo) / trials as f64;
    }

    let table = trec05p(&EmulatorOptions { scale: 0.1, seed: 42 });
    let bootstrap = BootstrapConfig { trials: 200, alpha: 0.05 };
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let mut uniform_width = 0.0;
    for _ in 0..trials {
        let oracle = PredicateOracle::new(&table, "is_spam").expect("column exists");
        let r = run_uniform_with_ci(n, &oracle, 2000, Aggregate::Avg, &bootstrap, &mut rng);
        let ci = r.ci.expect("uniform CI");
        uniform_width += (ci.hi - ci.lo) / trials as f64;
    }
    assert!(
        abae_width < uniform_width,
        "trained-proxy ABae CI width {abae_width} should beat uniform {uniform_width}"
    );
}

#[test]
fn unknown_proxy_error_lists_columns_and_trained_artifacts() {
    let engine = engine(ExecOptions::sequential());
    let mut session = engine.session_with_id(0);

    // Before training: the three shipped columns.
    let err = session
        .execute("SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 100 USING nope")
        .expect_err("unknown proxy must fail");
    match &err {
        QueryError::UnknownProxy { proxy, table, available } => {
            assert_eq!(proxy, "nope");
            assert_eq!(table, "trec05p");
            assert_eq!(
                available,
                &["is_spam".to_string(), "is_spam_kw2".to_string(), "is_spam_kw3".to_string()]
            );
        }
        other => panic!("expected UnknownProxy, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("available: is_spam, is_spam_kw2, is_spam_kw3"), "{msg}");

    // After training, the artifact joins the listing.
    session.run(CREATE).expect("training succeeds");
    let err = session
        .execute("SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 100 USING nope")
        .expect_err("unknown proxy must still fail");
    match err {
        QueryError::UnknownProxy { available, .. } => {
            assert_eq!(available.last().map(String::as_str), Some("spamnet"), "{available:?}");
            assert_eq!(available.len(), 4);
        }
        other => panic!("expected UnknownProxy, got {other:?}"),
    }
}

#[test]
fn show_proxies_roundtrips_through_the_session() {
    let engine = engine(ExecOptions::sequential());
    let mut session = engine.session_with_id(0);
    assert_eq!(
        session.run("SHOW PROXIES").expect("listing succeeds"),
        StatementOutcome::Proxies(vec![])
    );
    session.run(CREATE).expect("training succeeds");
    match session.run("SHOW PROXIES FROM trec05p").expect("listing succeeds") {
        StatementOutcome::Proxies(list) => {
            assert_eq!(list.len(), 1);
            assert_eq!(list[0].name, "spamnet");
            assert!(list[0].describe().contains("trained on 1000 labels"));
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    assert!(matches!(
        session.run("SHOW PROXIES FROM nope"),
        Err(QueryError::UnknownTable(t)) if t == "nope"
    ));
}

#[test]
fn calibrated_and_raw_scores_induce_identical_abae_runs() {
    // Platt calibration is monotone, so quantile stratification — and
    // with it every draw ABae makes — is unchanged; only the score
    // *values* move. Pin that by running ABae on the raw and calibrated
    // score vectors with identical RNG streams.
    use abae::core::run_abae;
    use abae::core::strata::Stratification;
    use abae::ml::proxy::{Calibrated, LogisticModel, ProxyModel};

    let table = trec05p(&EmulatorOptions { scale: 0.05, seed: 9 });
    let texts = table.texts().expect("trec05p carries text");
    let labels = table.predicate("is_spam").unwrap().labels();
    let train: Vec<&str> = texts.iter().take(800).collect();
    let train_labels: Vec<bool> = labels.iter().take(800).collect();

    let mut raw = LogisticModel::new();
    raw.fit(&train, &train_labels).expect("fit succeeds");
    let mut calibrated = Calibrated::new(LogisticModel::new());
    calibrated.fit(&train, &train_labels).expect("fit succeeds");
    assert!(calibrated.scaler().expect("fitted").slope() > 0.0);

    let all: Vec<&str> = texts.iter().collect();
    let raw_scores: Vec<f64> =
        raw.score_batch(&all).into_iter().map(|s| s.clamp(0.0, 1.0)).collect();
    let cal_scores: Vec<f64> =
        calibrated.score_batch(&all).into_iter().map(|s| s.clamp(0.0, 1.0)).collect();

    // Identical strata membership...
    let k = 5;
    let s_raw = Stratification::by_proxy_quantile(&raw_scores, k);
    let s_cal = Stratification::by_proxy_quantile(&cal_scores, k);
    assert_eq!(s_raw.strata(), s_cal.strata(), "monotone map must preserve strata");

    // ...and identical end-to-end runs under the same stream.
    let oracle = PredicateOracle::new(&table, "is_spam").expect("column exists");
    let cfg = AbaeConfig { budget: 1500, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(3);
    let a = run_abae(&raw_scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let b = run_abae(&cal_scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
    assert_eq!(a.estimate, b.estimate, "allocation and draws must be unchanged");
    assert_eq!(a.oracle_calls, b.oracle_calls);
}
