//! Build-bootstrap smoke test: one end-to-end query through the facade.
//!
//! Exercises the `abae` re-exports from outside the workspace the way a
//! downstream user would — build a synthetic table (`abae::data`), freeze
//! it into an engine, execute a SQL query from a session (`abae::query`),
//! and check the bootstrap CI against the ground truth the table can
//! compute exactly.

use abae::data::synthetic::{PredicateModel, StatisticModel, SyntheticSpec};
use abae::query::Engine;

#[test]
fn end_to_end_query_ci_brackets_ground_truth() {
    let table = SyntheticSpec {
        name: "events".into(),
        n: 50_000,
        predicates: vec![PredicateModel::new("matches", 0.3, 2.0, 0.4)],
        statistic: StatisticModel::Normal { mean: 10.0, sd: 2.0, coupling: 4.0 },
        seed: 0xABAE,
    }
    .generate()
    .expect("valid spec");
    let exact = table.exact_avg("matches").expect("predicate exists");

    let engine = Engine::builder().table(table).bootstrap_trials(400).seed(7).build();
    let mut session = engine.session();

    let trials = 10;
    let mut covered = 0;
    for _ in 0..trials {
        let result = session
            .execute(
                "SELECT AVG(x) FROM events WHERE matches \
                 ORACLE LIMIT 3000 WITH PROBABILITY 0.95",
            )
            .expect("query executes");
        assert!(result.oracle_calls <= 3000, "budget exceeded: {}", result.oracle_calls);
        let ci = result.ci().expect("scalar query returns a CI");
        assert!(ci.lo <= result.estimate() && result.estimate() <= ci.hi);
        assert!(
            (result.estimate() - exact).abs() / exact < 0.1,
            "estimate {} far from truth {exact}",
            result.estimate()
        );
        if ci.contains(exact) {
            covered += 1;
        }
    }
    // 95% nominal CIs: all but (rarely) one of 10 trials should bracket
    // the ground truth.
    assert!(covered >= 9, "coverage {covered}/{trials}");
}
