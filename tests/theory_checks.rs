//! Integration tests validating the paper's theory on live runs:
//! Proposition 1/2 consistency and the Theorem 4.1 rate, exercised through
//! the public API.

use abae::core::allocation::optimal_allocation;
use abae::core::config::{AbaeConfig, Aggregate};
use abae::core::error_model::{allocation_mse, optimal_mse};
use abae::core::strata::Stratification;
use abae::core::two_stage::run_two_stage;
use abae::data::synthetic::{PredicateModel, StatisticModel, SyntheticSpec};
use abae::data::PredicateOracle;
use abae::stats::metrics::mse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(n: usize, seed: u64) -> abae::data::Table {
    SyntheticSpec {
        name: "theory".to_string(),
        n,
        predicates: vec![PredicateModel::new("p", 0.25, 1.0, 0.3)],
        statistic: StatisticModel::Normal { mean: 4.0, sd: 1.5, coupling: 3.0 },
        seed,
    }
    .generate()
    .expect("valid spec")
}

#[test]
fn measured_mse_tracks_proposition_2_prediction() {
    let table = dataset(150_000, 1);
    let exact = table.exact_avg("p").unwrap();
    let pred = table.predicate("p").unwrap();
    let strat = Stratification::by_proxy_quantile(pred.proxy(), 5);
    let gt = strat.ground_truth(&pred.labels_vec(), table.statistics());
    let p: Vec<f64> = gt.iter().map(|s| s.p).collect();
    let sigma: Vec<f64> = gt.iter().map(|s| s.sigma).collect();

    let budget = 4000;
    // Predicted MSE at the optimal allocation with this budget's Stage-2
    // share; Stage 1 also contributes samples, so the realized MSE should
    // be *at most* about the prediction for the full budget and at least
    // the prediction's order of magnitude.
    let predicted = optimal_mse(&p, &sigma, budget);

    let mut rng = StdRng::seed_from_u64(2);
    let cfg = AbaeConfig { budget, ..Default::default() };
    let estimates: Vec<f64> = (0..80)
        .map(|_| {
            let oracle = PredicateOracle::new(&table, "p").unwrap();
            run_two_stage(&strat, &oracle, &cfg, Aggregate::Avg, &mut rng)
                .unwrap()
                .estimate
        })
        .collect();
    let measured = mse(&estimates, exact);
    assert!(
        measured < predicted * 3.0 && measured > predicted / 3.0,
        "measured {measured} vs predicted {predicted}"
    );
}

#[test]
fn doubling_the_budget_roughly_halves_the_mse() {
    // Theorem 4.1's O(1/N) rate, checked end to end.
    let table = dataset(200_000, 3);
    let exact = table.exact_avg("p").unwrap();
    let pred = table.predicate("p").unwrap();
    let strat = Stratification::by_proxy_quantile(pred.proxy(), 5);
    let mut rng = StdRng::seed_from_u64(4);

    let mse_at = |budget: usize, rng: &mut StdRng| -> f64 {
        let cfg = AbaeConfig { budget, ..Default::default() };
        let estimates: Vec<f64> = (0..150)
            .map(|_| {
                let oracle = PredicateOracle::new(&table, "p").unwrap();
                run_two_stage(&strat, &oracle, &cfg, Aggregate::Avg, rng)
                    .unwrap()
                    .estimate
            })
            .collect();
        mse(&estimates, exact)
    };
    let at_2k = mse_at(2000, &mut rng);
    let at_8k = mse_at(8000, &mut rng);
    let ratio = at_2k / at_8k;
    // 4x budget should shrink MSE ~4x; accept 2x-8x under sampling noise.
    assert!(
        (2.0..8.0).contains(&ratio),
        "MSE ratio {ratio} (2k: {at_2k}, 8k: {at_8k}) not consistent with O(1/N)"
    );
}

#[test]
fn proposition_1_is_the_argmin_over_random_allocations() {
    let p = [0.03, 0.2, 0.45, 0.7, 0.95];
    let sigma = [1.8, 1.2, 1.0, 0.7, 0.4];
    let n = 1000;
    let best = optimal_mse(&p, &sigma, n);
    let t_star = optimal_allocation(&p, &sigma);
    assert!((allocation_mse(&p, &sigma, &t_star, n) - best).abs() < 1e-12);

    let mut rng = StdRng::seed_from_u64(5);
    use rand::Rng as _;
    for _ in 0..200 {
        let raw: Vec<f64> = (0..p.len()).map(|_| rng.gen_range(0.01..1.0)).collect();
        let total: f64 = raw.iter().sum();
        let t: Vec<f64> = raw.iter().map(|v| v / total).collect();
        assert!(
            allocation_mse(&p, &sigma, &t, n) >= best - 1e-12,
            "random allocation {t:?} beat the optimum"
        );
    }
}
