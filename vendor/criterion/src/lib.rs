//! Offline stand-in for the `criterion` benchmark harness (API subset).
//!
//! The build environment has no crates.io access, so this crate vendors the
//! slice of criterion the workspace's `benches/` use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros (both the
//! simple and the `name/config/targets` forms).
//!
//! Instead of criterion's full statistical pipeline, each benchmark is timed
//! with a fixed warm-up followed by `sample_size` timed batches; the median
//! per-iteration time is printed. Passing `--test` (as `cargo test --benches`
//! does) runs every benchmark body exactly once for a smoke check.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver: holds run settings and prints results.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 20, test_mode }
    }
}

impl Criterion {
    /// Sets how many timed batches to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Times a single function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times a single function within the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion, &id, f);
        self
    }

    /// Times a function parameterized by an input value.
    pub fn bench_with_input<I, D, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        D: ?Sized,
        F: FnMut(&mut Bencher, &D),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion, &id, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the code to
/// time.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and pick a batch size aiming for ~10ms per sample.
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        self.iters_per_sample =
            (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, id: &str, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size: criterion.sample_size,
        test_mode: criterion.test_mode,
    };
    f(&mut bencher);
    if criterion.test_mode {
        println!("test-mode: {id} ... ok");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "{id:<48} median {} (min {}, max {})",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to `main`, running every group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion { sample_size: 2, test_mode: true };
        let mut ran = 0;
        c.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.bench_function("h", |b| {
            b.iter(|| black_box(2 + 2));
        });
        g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &x| {
            ran += 1;
            b.iter(|| black_box(x * 2));
        });
        g.finish();
        assert_eq!(ran, 1);
    }
}
