//! Strategies for collections.

use crate::strategy::Strategy;
use rand::rngs::StdRng;

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

/// Generates `Vec<S::Value>` with a length drawn from `size` (any
/// `usize`-valued strategy: `0..200`, `2..=6`, …).
pub fn vec<S, L>(element: S, size: L) -> VecStrategy<S, L>
where
    S: Strategy,
    L: Strategy<Value = usize>,
{
    VecStrategy { element, size }
}

impl<S, L> Strategy for VecStrategy<S, L>
where
    S: Strategy,
    L: Strategy<Value = usize>,
{
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.new_value(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
