//! Offline stand-in for the `proptest` crate (API subset, no shrinking).
//!
//! The build environment has no crates.io access, so this crate vendors the
//! slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! * [`prop_oneof!`] and [`strategy::Just`],
//! * range strategies (`0.1f64..10.0`, `1usize..1000`, …), tuple strategies,
//!   [`collection::vec`], and [`bool::ANY`],
//! * [`test_runner::ProptestConfig`] (`cases` only).
//!
//! Differences from the real crate: failing inputs are **not shrunk** — the
//! failure report prints the offending case's seed instead, which is enough
//! to reproduce deterministically, since generation is seeded per test name
//! and case index.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub use rand as __rand;

/// Strategies over `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A uniformly random boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Strategies over numeric types (re-exports range strategies' home module
/// for path compatibility with `proptest::num`).
pub mod num {}

/// Everything a property test needs, in one import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn sum_is_commutative(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?} == {:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?} != {:?}`",
            lhs,
            rhs
        );
    }};
}

/// Skips the current case (counted as a pass) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let union = $crate::strategy::Union::empty();
        $(let union = union.or($arm);)+
        union
    }};
}
