//! Value-generation strategies.
//!
//! A [`Strategy`] here is just "something that can produce a random value" —
//! no shrink trees. Ranges of primitives, tuples of strategies, [`Just`],
//! [`Union`] (behind `prop_oneof!`), and `collection::vec` cover the
//! workspace's property tests.

use rand::distributions::uniform::SampleUniform;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Produces random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Copy> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String-regex strategies (minimal): a `&str` pattern is a strategy for
/// `String`, as in real proptest.
///
/// Only the pattern this workspace uses is supported: `\PC*` — "zero or more
/// printable (non-control) characters". Any other pattern panics, loudly,
/// rather than silently generating the wrong distribution.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        assert_eq!(
            *self, "\\PC*",
            "vendored proptest only supports the string pattern \\PC* (got {self:?})"
        );
        let len = rng.gen_range(0usize..=64);
        (0..len).map(|_| printable_char(rng)).collect()
    }
}

/// A random printable character: mostly ASCII, sometimes wider Unicode.
fn printable_char(rng: &mut StdRng) -> char {
    if rng.gen_bool(0.8) {
        return char::from_u32(rng.gen_range(0x20u32..0x7f)).expect("printable ASCII");
    }
    loop {
        let c = rng.gen_range(0xa0u32..0xd800);
        if let Some(c) = char::from_u32(c) {
            if !c.is_control() {
                return c;
            }
        }
    }
}

/// Uniform choice among boxed strategies with a common value type.
///
/// Built by the `prop_oneof!` macro.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union with no arms yet.
    pub fn empty() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds one more strategy as an equally weighted arm.
    pub fn or<S>(mut self, strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        self.arms.push(Box::new(strategy));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].new_value(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}
