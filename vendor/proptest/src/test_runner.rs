//! The per-test case loop and its configuration.

use rand::{rngs::StdRng, SeedableRng};

/// Configuration for one `proptest!` test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream proptest's 256 to keep the suite
    /// fast without shrinking support; failures print a reproducible seed.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the case (and test) fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// An assertion failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// An input rejection (from `prop_assume!`).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(message) => write!(f, "{message}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

/// Derives a stable per-test seed from the test's name (FNV-1a).
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `config.cases` random cases of `body`, panicking on the first
/// failure with the case index and seed (enough to reproduce: generation is
/// a pure function of test name and case index).
pub fn run_cases<F>(config: &ProptestConfig, name: &str, body: F)
where
    F: Fn(&mut StdRng) -> Result<(), TestCaseError>,
{
    let base = name_seed(name);
    let mut passed: u32 = 0;
    let mut case: u64 = 0;
    // Allow a bounded number of extra iterations so prop_assume! rejections
    // don't eat into the case budget (mirrors proptest's max_global_rejects).
    let max_iterations = config.cases as u64 * 16 + 1024;
    while passed < config.cases && case < max_iterations {
        let seed = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest `{name}` failed at case {case} (seed {seed:#x}): {message}"
                );
            }
        }
        case += 1;
    }
    assert!(
        passed >= config.cases,
        "proptest `{name}`: too many prop_assume! rejections ({passed}/{} cases ran)",
        config.cases
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_exactly_the_configured_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run_cases(&ProptestConfig::with_cases(10), "t", |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        run_cases(&ProptestConfig::with_cases(5), "t", |_| {
            Err(TestCaseError::fail("boom".into()))
        });
    }
}
