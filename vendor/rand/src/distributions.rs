//! Distribution traits and the uniform primitives.

use crate::{Rng, RngCore};

/// A distribution over values of type `T`, sampled with an [`Rng`].
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" uniform distribution for primitive types: full range for
/// integers, `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// Converts a random `u64` into a uniform `f64` in `[0, 1)` using the top 53
/// bits (the full mantissa width, so every representable step is hit).
#[inline]
pub(crate) fn u64_to_unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Converts a random `u32` into a uniform `f32` in `[0, 1)` using 24 bits.
#[inline]
pub(crate) fn u32_to_unit_f32(x: u32) -> f32 {
    (x >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        u64_to_unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        u32_to_unit_f32(rng.next_u32())
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform range sampling for the primitive types.
pub mod uniform {
    use super::{u64_to_unit_f64, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A primitive type that can be drawn uniformly from a range.
    ///
    /// The single blanket impl of [`SampleRange`] over this trait (rather
    /// than one impl per primitive) is what lets type inference flow through
    /// expressions like `x + rng.gen_range(-0.1..0.1)` with unsuffixed
    /// literals, exactly as with the real `rand`.
    pub trait SampleUniform: Sized {
        /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
        fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

        /// Uniform draw from `[lo, hi]`. Panics if the range is empty.
        fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    }

    /// A range that can be sampled uniformly — the bound behind
    /// [`Rng::gen_range`](crate::Rng::gen_range).
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }

    /// Uniform `u64` in `[0, n)` by widening multiplication (Lemire's fast
    /// path: the bias for the range sizes used in this workspace — far below
    /// 2^64 — is immeasurably small).
    #[inline]
    fn u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((rng.next_u64() as u128 * n as u128) >> 64) as u64
    }

    macro_rules! int_uniform {
        ($($t:ty => $u:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    assert!(lo < hi, "gen_range: empty range");
                    // Route the span through the unsigned counterpart: for
                    // signed types, hi - lo can overflow $t (e.g.
                    // -100i8..100), and a direct `as u64` would sign-extend.
                    let span = hi.wrapping_sub(lo) as $u as u64;
                    lo.wrapping_add(u64_below(rng, span) as $t)
                }

                fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = hi.wrapping_sub(lo) as $u as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(u64_below(rng, span + 1) as $t)
                }
            }
        )*};
    }

    int_uniform!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    macro_rules! float_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    assert!(lo < hi, "gen_range: empty range");
                    let u = u64_to_unit_f64(rng.next_u64());
                    let v = (lo as f64 + (hi as f64 - lo as f64) * u) as $t;
                    // Guard against f.p. rounding landing exactly on `hi`;
                    // step down in the *target* type (stepping the f64 and
                    // casting could round back up to `hi` for f32).
                    if v >= hi {
                        let stepped = hi.next_down();
                        if stepped >= lo { stepped } else { lo }
                    } else {
                        v
                    }
                }

                fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    assert!(lo <= hi, "gen_range: empty range");
                    let u = u64_to_unit_f64(rng.next_u64());
                    (lo as f64 + (hi as f64 - lo as f64) * u) as $t
                }
            }
        )*};
    }

    float_uniform!(f32, f64);
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = StdRng::seed_from_u64(2);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..200 {
            match r.gen_range(0u64..=3) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn signed_range_wider_than_type_max_stays_in_bounds() {
        // hi - lo overflows the signed type; the span must go through the
        // unsigned counterpart, not sign-extend.
        let mut r = StdRng::seed_from_u64(9);
        let mut seen_lo_half = false;
        let mut seen_hi_half = false;
        for _ in 0..2000 {
            let v = r.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "{v}");
            if v < 0 {
                seen_lo_half = true;
            } else {
                seen_hi_half = true;
            }
            let w = r.gen_range(i32::MIN..0);
            assert!(w < 0);
            let x = r.gen_range(i64::MIN..=i64::MAX);
            let _ = x;
        }
        assert!(seen_lo_half && seen_hi_half);
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
