//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand` it actually uses:
//!
//! * [`rngs::StdRng`] — a seedable PRNG (xoshiro256++ seeded via SplitMix64).
//! * [`SeedableRng::seed_from_u64`] — the only constructor the workspace uses.
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`Rng::sample`] —
//!   uniform generation for the primitive types the workspace draws.
//! * [`distributions::Distribution`] — the trait the hand-rolled samplers in
//!   `abae_stats::dist` implement.
//!
//! The statistical quality of xoshiro256++ is more than adequate for the
//! Monte-Carlo tests in this workspace; it is not cryptographically secure,
//! exactly like the real `StdRng` contract (which only promises a good
//! general-purpose source). Streams differ from upstream `rand`, so seeds do
//! not reproduce upstream sequences — all in-repo tests were calibrated
//! against this generator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// A low-level source of random `u32`/`u64` words.
///
/// Mirrors `rand_core::RngCore` for the methods this workspace needs.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// User-facing generation methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniform value of type `T` (for `f64`/`f32`: in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Returns a uniform value in the given range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded to the generator's full state with SplitMix64,
    /// so nearby seeds still produce decorrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}
