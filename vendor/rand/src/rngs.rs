//! Concrete generator types.

use crate::{RngCore, SeedableRng};

/// The workspace's standard PRNG: xoshiro256++ (Blackman & Vigna, 2019).
///
/// 256 bits of state, period `2^256 - 1`, passes BigCrush. Seeded from a
/// single `u64` via SplitMix64 state expansion, per the xoshiro authors'
/// recommendation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_mean_is_half() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
